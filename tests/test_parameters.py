"""Tests of the parameter bundle and its stability estimates."""

import numpy as np
import pytest

from repro.core.parameters import PhaseFieldParameters
from repro.thermo.system import TernaryEutecticSystem


@pytest.fixture(scope="module")
def system():
    return TernaryEutecticSystem()


class TestValidation:
    def test_for_system_defaults(self, system):
        p = PhaseFieldParameters.for_system(system)
        assert p.n_phases == 4
        assert p.dim == 3
        assert p.eps == pytest.approx(4.0 * p.dx)
        assert p.dt > 0

    def test_bad_dim(self, system):
        with pytest.raises(ValueError, match="dim"):
            PhaseFieldParameters.for_system(system, dim=4)

    def test_gamma_shape_checked(self, system):
        p = PhaseFieldParameters.for_system(system)
        with pytest.raises(ValueError, match="gamma"):
            p.with_(gamma=np.ones((3, 3)))

    def test_gamma_symmetry_checked(self, system):
        p = PhaseFieldParameters.for_system(system)
        g = p.gamma.copy()
        g[0, 1] = 99.0
        with pytest.raises(ValueError, match="symmetric"):
            p.with_(gamma=g)

    def test_tau_positive(self, system):
        p = PhaseFieldParameters.for_system(system)
        with pytest.raises(ValueError, match="tau"):
            p.with_(tau=np.array([1.0, 1.0, -1.0, 1.0]))

    def test_positive_scalars(self, system):
        p = PhaseFieldParameters.for_system(system)
        for name in ("dx", "dt", "eps"):
            with pytest.raises(ValueError, match=name):
                p.with_(**{name: 0.0})


class TestStability:
    def test_stable_dt_decreases_with_gamma(self, system):
        lo = PhaseFieldParameters.for_system(system, gamma_scale=1.0)
        hi = PhaseFieldParameters.for_system(system, gamma_scale=4.0)
        assert hi.stable_dt(system) < lo.stable_dt(system)

    def test_stable_dt_scales_with_dx(self, system):
        fine = PhaseFieldParameters.for_system(system, dx=0.5)
        coarse = PhaseFieldParameters.for_system(system, dx=1.0)
        assert fine.stable_dt(system) < coarse.stable_dt(system)

    def test_default_dt_within_estimate(self, system):
        p = PhaseFieldParameters.for_system(system, dt_safety=0.2)
        assert p.dt == pytest.approx(0.2 * p.stable_dt(system))

    def test_simulation_stays_bounded(self, system):
        """Empirical stability: 50 steps keep mu bounded (explicit Euler)."""
        from repro.core.solver import Simulation

        sim = Simulation(shape=(6, 6, 16), system=system, kernel="buffered")
        sim.initialize_voronoi(seed=1, n_seeds=4)
        sim.step(50)
        assert np.isfinite(sim.mu.src).all()
        assert np.abs(sim.mu.interior_src).max() < 50.0


class TestCombinatorics:
    def test_pairs(self, system):
        p = PhaseFieldParameters.for_system(system)
        assert len(p.pairs) == 6
        assert all(a < b for a, b in p.pairs)

    def test_triples(self, system):
        p = PhaseFieldParameters.for_system(system)
        assert len(p.triples) == 4
        assert all(a < b < c for a, b, c in p.triples)
