"""Perf-regression history: entries, baselines, verdicts, CLI.

ISSUE 8 acceptance: the history CLI ingests the committed
``BENCH_*.json`` reports, writes ``history.jsonl``, and a synthetic 2x
slowdown against an established baseline is flagged as a regression.
"""

import json

import pytest

from repro.perf.history import (
    _main,
    append_history,
    detect_regressions,
    entry_from_report,
    flatten_metrics,
    load_history,
    machine_fingerprint,
)
from repro.telemetry.report import build_run_report, write_run_report


def make_report(mlups=10.0, wall=2.0, run_id="bench-x", smoke=False,
                series=None, created=None, **kwargs):
    report = build_run_report(
        run_id=run_id,
        config={"benchmark": run_id, "smoke": smoke},
        grid_shape=(8, 8, 8),
        n_ranks=1,
        steps=4,
        wall_seconds=wall,
        mlups=mlups,
        series=series,
        **kwargs,
    )
    if created is not None:
        report["created"] = created
    return report


class TestFingerprint:
    def test_stable_and_short(self):
        fp = machine_fingerprint()
        assert fp == machine_fingerprint()
        assert len(fp) == 12
        int(fp, 16)  # hex


class TestFlattenMetrics:
    def test_top_level_series_and_tracing(self):
        report = make_report(
            mlups=12.5, wall=3.0,
            series={
                "phi": {"interface": {"basic": 0.5}},
                "curve": [1, 2, 3],       # lists are not trend scalars
                "flag": {"smoke": True},  # booleans are not metrics
            },
            tracing_stats={"overlap": {"exchange_seconds": 1.0,
                                       "hidden_seconds": 0.8,
                                       "efficiency": 0.8}},
        )
        metrics = flatten_metrics(report)
        assert metrics["mlups"] == 12.5
        assert metrics["wall_seconds"] == 3.0
        assert metrics["series/phi/interface/basic"] == 0.5
        assert metrics["tracing/overlap_efficiency"] == 0.8
        assert "series/curve" not in metrics
        assert "series/flag/smoke" not in metrics


class TestEntriesAndAppend:
    def test_entry_shape(self):
        entry = entry_from_report(make_report(), source="a.json")
        assert entry["series_key"] == (
            f"bench-x@{entry['config_hash']}@{machine_fingerprint()}"
        )
        assert entry["smoke"] is False
        assert entry["source"] == "a.json"
        assert entry["metrics"]["mlups"] == 10.0

    def test_append_dedupes_and_loads(self, tmp_path):
        path = tmp_path / "history.jsonl"
        entry = entry_from_report(make_report(created=100.0))
        assert len(append_history(path, [entry])) == 1
        assert len(append_history(path, [entry])) == 0  # idempotent
        later = entry_from_report(make_report(created=200.0))
        assert len(append_history(path, [entry, later])) == 1
        assert len(load_history(path)) == 2

    def test_load_missing_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"not": "an entry"}\n')
        with pytest.raises(ValueError):
            load_history(path)


def series_of(mlups_values, *, smoke=False, wall=None):
    """History entries of one series: one entry per mlups value."""
    return [
        entry_from_report(make_report(
            mlups=m, smoke=smoke, created=float(100 + i),
            wall=2.0 if wall is None else wall[i],
        ))
        for i, m in enumerate(mlups_values)
    ]


def verdict_of(verdicts, metric):
    (v,) = [v for v in verdicts if v["metric"] == metric]
    return v


class TestDetectRegressions:
    def test_synthetic_2x_slowdown_is_flagged(self):
        # Five steady runs at 10 MLUP/s, then one at 5 — the acceptance
        # criterion's injected 2x slowdown.
        entries = series_of([10.0, 10.1, 9.9, 10.0, 10.2, 5.0])
        v = verdict_of(detect_regressions(entries), "mlups")
        assert v["verdict"] == "regression"
        assert v["ratio"] == pytest.approx(0.5, abs=0.01)
        assert v["baseline"] == pytest.approx(10.0, abs=0.2)

    def test_durations_regress_upward(self):
        # wall_seconds doubling is also a regression (lower is better).
        entries = series_of([10.0] * 5 + [10.0],
                            wall=[2.0, 2.0, 2.1, 1.9, 2.0, 4.2])
        v = verdict_of(detect_regressions(entries), "wall_seconds")
        assert v["verdict"] == "regression"

    def test_steady_series_is_ok_and_speedup_improves(self):
        entries = series_of([10.0, 10.2, 9.8, 10.1])
        assert verdict_of(detect_regressions(entries),
                          "mlups")["verdict"] == "ok"
        entries = series_of([10.0, 10.0, 10.0, 25.0])
        assert verdict_of(detect_regressions(entries),
                          "mlups")["verdict"] == "improved"

    def test_first_entry_is_new(self):
        entries = series_of([10.0])
        assert verdict_of(detect_regressions(entries),
                          "mlups")["verdict"] == "new"

    def test_median_shrugs_off_one_outlier(self):
        # one slow run inside the window must not drag the baseline
        entries = series_of([10.0, 1.0, 10.0, 10.0, 10.0, 9.5])
        assert verdict_of(detect_regressions(entries),
                          "mlups")["verdict"] == "ok"

    def test_window_limits_baseline(self):
        # old fast epoch beyond the window is forgotten
        entries = series_of([100.0, 100.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.1])
        v = verdict_of(detect_regressions(entries, window=5), "mlups")
        assert v["verdict"] == "ok"

    def test_smoke_flag_is_carried(self):
        entries = series_of([10.0] * 5 + [5.0], smoke=True)
        v = verdict_of(detect_regressions(entries), "mlups")
        assert v["verdict"] == "regression"
        assert v["smoke"] is True

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            detect_regressions([], window=0)
        with pytest.raises(ValueError):
            detect_regressions([], threshold=1.5)


class TestCli:
    def _write_bench(self, directory, name, **kwargs):
        write_run_report(directory / f"BENCH_{name}.json",
                         make_report(run_id=f"bench-{name}", **kwargs))

    def test_ingests_directory_and_is_idempotent(self, tmp_path, capsys):
        results = tmp_path / "results"
        self._write_bench(results, "a", mlups=10.0, created=100.0)
        self._write_bench(results, "b", mlups=20.0, created=100.0)
        history = tmp_path / "history.jsonl"
        assert _main([str(results), "--history", str(history)]) == 0
        assert "2 new entries" in capsys.readouterr().out
        assert len(load_history(history)) == 2
        assert _main([str(results), "--history", str(history)]) == 0
        assert "0 new entries" in capsys.readouterr().out

    def test_ingests_committed_results(self, tmp_path):
        from pathlib import Path

        results = Path(__file__).parent.parent / "benchmarks" / "results"
        history = tmp_path / "history.jsonl"
        assert _main([str(results), "--history", str(history)]) == 0
        entries = load_history(history)
        assert entries  # the committed BENCH_*.json all ingest cleanly
        assert all("@" in e["series_key"] for e in entries)

    def test_gate_fails_on_non_smoke_regression(self, tmp_path):
        results = tmp_path / "results"
        history = tmp_path / "history.jsonl"
        for i, m in enumerate([10.0, 10.0, 10.0, 10.0, 10.0]):
            self._write_bench(results, "x", mlups=m, created=100.0 + i)
            assert _main([str(results), "--history", str(history),
                          "--gate"]) == 0
        self._write_bench(results, "x", mlups=5.0, created=200.0)
        assert _main([str(results), "--history", str(history),
                      "--gate"]) == 1
        # without --gate the regression only warns
        self._write_bench(results, "x", mlups=5.0, created=201.0)
        assert _main([str(results), "--history", str(history)]) == 0

    def test_gate_ignores_smoke_regressions(self, tmp_path):
        results = tmp_path / "results"
        history = tmp_path / "history.jsonl"
        for i, m in enumerate([10.0, 10.0, 10.0, 10.0, 10.0, 5.0]):
            self._write_bench(results, "x", mlups=m, smoke=True,
                              created=100.0 + i)
            _main([str(results), "--history", str(history)])
        assert _main([str(results), "--history", str(history),
                      "--gate"]) == 0

    def test_invalid_reports_are_skipped(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_bad.json").write_text('{"schema": "wrong"}')
        history = tmp_path / "history.jsonl"
        assert _main([str(results), "--history", str(history)]) == 2
        assert "skipping" in capsys.readouterr().err

    def test_entries_json_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, [entry_from_report(make_report())])
        for line in path.read_text().splitlines():
            entry = json.loads(line)
            assert entry["version"] == 1
