"""Tests of machines, netmodel, roofline and the scaling simulators."""

import time

import numpy as np
import pytest

from repro.perf.kernel_analysis import (
    KernelCost,
    mu_kernel_cost,
    phi_kernel_cost,
    port_pressure_bound,
)
from repro.perf.machines import HORNET, JUQUEEN, MACHINES, SUPERMUC
from repro.perf.metrics import measure_kernel_rate, mlups
from repro.perf.netmodel import (
    exchange_time,
    ghost_bytes_per_step,
    message_time,
    topology_factor,
)
from repro.perf.roofline import bytes_per_cell, roofline
from repro.perf.scaling import (
    SCENARIO_COST,
    comm_time_per_step,
    intranode_scaling,
    weak_scaling_curve,
)


class TestMachines:
    def test_registry(self):
        assert set(MACHINES) == {"SuperMUC", "Hornet", "JUQUEEN"}

    def test_supermuc_peak(self):
        """8 FLOPs/cycle at 2.7 GHz -> 21.6 GFLOP/s per core (Sec. 5.1.1)."""
        assert SUPERMUC.peak_flops_core == pytest.approx(21.6e9)

    def test_total_core_counts_from_paper(self):
        assert SUPERMUC.total_cores == 147_456
        assert HORNET.total_cores == 94_656
        assert JUQUEEN.total_cores == 458_752

    def test_juqueen_smt(self):
        assert JUQUEEN.smt == 4


class TestRoofline:
    def test_paper_bytes_per_cell(self):
        """19+19 phi cells + 7 mu reads + 1 write at 50% cache reuse = 680 B."""
        assert bytes_per_cell(4, 2) == pytest.approx(680.0)

    def test_paper_memory_bound(self):
        """80 GiB/s / 680 B = 126.3 MLUP/s (the paper's headline bound)."""
        r = roofline(SUPERMUC, 1384.0, 680.0)
        assert r.memory_bound_mlups_node == pytest.approx(126.3, abs=0.1)

    def test_mu_kernel_is_compute_bound(self):
        r = roofline(SUPERMUC, mu_kernel_cost().flops, bytes_per_cell(4, 2))
        assert not r.memory_bound

    def test_arithmetic_intensity_at_least_two(self):
        """Paper: 'a lower bound ... of approximately two FLOP per byte'."""
        r = roofline(SUPERMUC, 1384.0, 680.0)
        assert r.arithmetic_intensity >= 2.0

    def test_peak_fraction(self):
        r = roofline(SUPERMUC, 1384.0, 680.0)
        # paper: 4.2 MLUP/s per core == 5.8 GFLOP/s == 27% of core peak
        assert r.peak_fraction(4.2, SUPERMUC) == pytest.approx(0.27, abs=0.01)

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            roofline(SUPERMUC, 0.0, 680.0)


class TestKernelAnalysis:
    def test_costs_positive_and_mu_dominated_by_muls(self):
        mc = mu_kernel_cost()
        assert mc.flops > 500
        assert mc.muls > mc.adds  # the imbalance IACA reports

    def test_port_bound_below_one(self):
        """Add/mul imbalance + division latency cap the attainable peak —
        the paper's IACA result is 43 % for the mu-kernel."""
        b = port_pressure_bound(mu_kernel_cost())
        assert 0.25 < b < 0.65

    def test_balanced_kernel_reaches_peak(self):
        b = port_pressure_bound(KernelCost(adds=100, muls=100, divs=0, sqrts=0))
        assert b == pytest.approx(1.0)

    def test_divisions_hurt(self):
        base = KernelCost(adds=100, muls=100, divs=0, sqrts=0)
        divy = KernelCost(adds=100, muls=100, divs=20, sqrts=0)
        assert port_pressure_bound(divy) < port_pressure_bound(base)

    def test_cost_algebra(self):
        a = KernelCost(1, 2, 3, 4)
        b = a + a
        assert b.flops == 2 * a.flops
        assert a.scaled(2.0).muls == 4

    def test_static_matches_dynamic_count(self):
        """The static model must agree with the instrumented kernels to
        within a factor (validates both against gross errors)."""
        from repro.core.kernels import get_mu_kernel, make_context
        from repro.core.scenarios import fill_ghosts_periodic, make_scenario
        from repro.perf.flopcount import count_kernel_flops

        shape = (8, 8, 12)
        cells = int(np.prod(shape))
        phi, mu, tg, system, params = make_scenario("interface", shape)
        ctx = make_context(system, params)
        kern = get_mu_kernel("buffered")
        phi_dst = phi.copy()
        from repro.core.kernels import get_phi_kernel

        phi_dst[(slice(None),) + (slice(1, -1),) * 3] = get_phi_kernel("buffered")(
            ctx, phi, mu, tg
        )
        fill_ghosts_periodic(phi_dst, 3)
        counted = count_kernel_flops(
            lambda c, m, p, pd, t1, t2: kern(c, m, p, pd, t1, t2),
            ctx, [mu, phi, phi_dst, tg, tg - 0.01], cells,
        )
        static = mu_kernel_cost().flops
        assert counted["flops"] == pytest.approx(static, rel=0.5)


class TestNetModel:
    def test_latency_floor(self):
        t = message_time(SUPERMUC, 0, 1)
        assert t == pytest.approx(SUPERMUC.net_latency)

    def test_bandwidth_share_per_rank(self):
        t_shared = message_time(SUPERMUC, 10**6, 1, per_rank=True)
        t_full = message_time(SUPERMUC, 10**6, 1, per_rank=False)
        assert t_shared > t_full

    def test_topology_factor_grows_with_job(self):
        small = topology_factor(SUPERMUC, 2**5)
        large = topology_factor(SUPERMUC, 2**14)
        assert large > small

    def test_island_pruning_penalty(self):
        inside = topology_factor(SUPERMUC, SUPERMUC.island_cores)
        outside = topology_factor(SUPERMUC, SUPERMUC.island_cores * 4)
        assert outside > inside * 1.5

    def test_torus_nearly_flat(self):
        lo = topology_factor(JUQUEEN, 2**9)
        hi = topology_factor(JUQUEEN, 2**18)
        assert hi / lo < 1.5

    def test_ghost_bytes_dimensional_ordering(self):
        per_axis = ghost_bytes_per_step((10, 10, 10), 4)
        # later axes carry the ghosts of earlier ones -> larger slabs
        assert per_axis[0] < per_axis[1] < per_axis[2]
        assert per_axis[0] == 2 * 10 * 10 * 4 * 8

    def test_overlap_leaves_only_pack_time(self):
        full = exchange_time(SUPERMUC, (60, 60, 60), 4, 512, overlap=False)
        packed = exchange_time(SUPERMUC, (60, 60, 60), 4, 512, overlap=True)
        assert packed < 0.35 * full

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            message_time(SUPERMUC, -1)


class TestScalingModels:
    def test_fig7_near_linear(self):
        rates = intranode_scaling(SUPERMUC, [1, 2, 4, 8, 16], 40)
        speedup = rates[-1] / rates[0]
        assert 12.0 < speedup <= 16.0

    def test_fig7_small_blocks_slightly_lower(self):
        r40 = intranode_scaling(SUPERMUC, [16], 40)[0]
        r20 = intranode_scaling(SUPERMUC, [16], 20)[0]
        assert r20 < r40
        assert r20 > 0.7 * r40  # "changes the performance only slightly"

    def test_fig7_core_count_validated(self):
        with pytest.raises(ValueError):
            intranode_scaling(SUPERMUC, [32], 40)

    def test_fig8_phi_heavier_than_mu(self):
        rows = comm_time_per_step(SUPERMUC, [32, 4096])
        for r in rows:
            assert r.phi > r.mu

    def test_fig8_overlap_reduces_both(self):
        plain = comm_time_per_step(SUPERMUC, [512])[0]
        hidden = comm_time_per_step(
            SUPERMUC, [512], overlap_phi=True, overlap_mu=True
        )[0]
        assert hidden.phi < plain.phi
        assert hidden.mu < plain.mu

    def test_fig8_times_increase_with_cores(self):
        rows = comm_time_per_step(SUPERMUC, [2**5, 2**12])
        assert rows[1].phi > rows[0].phi

    def test_fig9_weak_scaling_nearly_flat(self):
        for m in (SUPERMUC, HORNET, JUQUEEN):
            curve = weak_scaling_curve(m, [2**5, 2**12, 2**17])
            assert curve[-1] > 0.85 * curve[0]

    def test_fig9_interface_slowest(self):
        rates = {
            s: weak_scaling_curve(SUPERMUC, [2**10], s)[0]
            for s in SCENARIO_COST
        }
        assert rates["interface"] < rates["liquid"]
        assert rates["interface"] < rates["solid"]

    def test_fig9_juqueen_per_core_far_below_intel(self):
        sj = weak_scaling_curve(JUQUEEN, [2**15])[0]
        sm = weak_scaling_curve(SUPERMUC, [2**15])[0]
        assert sj < 0.15 * sm

    def test_fig9_measured_rate_override(self):
        curve = weak_scaling_curve(SUPERMUC, [2**5], rate_core_override=0.5)
        assert curve[0] < 0.5

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="scenario"):
            weak_scaling_curve(SUPERMUC, [32], "plasma")

    def test_phi_overlap_has_split_overhead(self):
        """Hiding the phi exchange costs kernel-split overhead — the
        reason mu-only overlap wins overall (Sec. 5.1.2)."""
        mu_only = weak_scaling_curve(
            SUPERMUC, [2**10], overlap_mu=True, overlap_phi=False
        )[0]
        both = weak_scaling_curve(
            SUPERMUC, [2**10], overlap_mu=True, overlap_phi=True,
            split_overhead=0.10,
        )[0]
        assert mu_only > both


class TestMetrics:
    def test_mlups(self):
        assert mlups(2_000_000, 2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mlups(10, 0.0)

    def test_measure_kernel_rate(self):
        calls = []
        rate = measure_kernel_rate(lambda: calls.append(1), 1000, min_time=0.01)
        assert rate > 0
        assert len(calls) >= 2

    def test_measure_kernel_rate_accumulates_min_time(self):
        # a sub-microsecond kernel must still be measured over ~min_time
        # of wall clock (the old calibration capped the repeat count and
        # accumulated only microseconds)
        rate = measure_kernel_rate(
            lambda: None, 1000, min_time=0.05, max_repeats=20
        )
        timed = rate.repeats * rate.calls_per_repeat * rate.seconds_mean
        assert timed >= 0.02
        assert rate.calls_per_repeat > 100

    def test_measure_kernel_rate_noise_stats(self):
        rate = measure_kernel_rate(
            lambda: time.sleep(0.002), 1000, min_time=0.02, max_repeats=10
        )
        assert isinstance(rate, float)
        assert rate.calls_per_repeat == 1
        assert rate.repeats >= 2
        assert rate.seconds_min <= rate.seconds_median <= rate.seconds_mean * 2
        assert rate.seconds_std >= 0.0 and rate.noise >= 0.0
        d = rate.as_dict()
        assert d["mlups"] == pytest.approx(float(rate))
        assert set(d) == {
            "mlups", "repeats", "calls_per_repeat", "seconds_min",
            "seconds_mean", "seconds_median", "seconds_std", "noise",
            "warmup_seconds",
        }

    def test_measure_kernel_rate_untimed_warmup(self):
        # the first (cold) call must be excluded from calibration and
        # samples; its cost is reported separately as warmup_seconds
        state = {"calls": 0}

        def kernel():
            state["calls"] += 1
            if state["calls"] == 1:
                time.sleep(0.05)  # "compilation" on first call

        rate = measure_kernel_rate(
            kernel, 1000, min_time=0.02, max_repeats=10
        )
        assert rate.warmup_seconds >= 0.05
        # cold cost absent from the timed samples and from the autorange
        assert rate.seconds_mean < 0.05
        assert rate.as_dict()["warmup_seconds"] == rate.warmup_seconds
