"""Tests of the multi-obstacle potential."""

import numpy as np
import pytest

from repro.core.potential import OBSTACLE_PREFACTOR, dW_dphi, energy_density


@pytest.fixture
def gamma():
    g = np.full((4, 4), 0.01)
    np.fill_diagonal(g, 0.0)
    return g


class TestEnergyDensity:
    def test_zero_in_bulk(self, gamma):
        phi = np.zeros((4, 3))
        phi[2] = 1.0
        np.testing.assert_allclose(energy_density(phi, gamma, 0.1), 0.0)

    def test_pairwise_value(self, gamma):
        phi = np.array([0.5, 0.5, 0.0, 0.0]).reshape(4, 1)
        w = energy_density(phi, gamma, 0.0)
        assert w[0] == pytest.approx(OBSTACLE_PREFACTOR * 0.01 * 0.25)

    def test_triple_term(self, gamma):
        phi = np.array([1 / 3, 1 / 3, 1 / 3, 0.0]).reshape(4, 1)
        w0 = energy_density(phi, gamma, 0.0)[0]
        w1 = energy_density(phi, gamma, 0.9)[0]
        assert w1 - w0 == pytest.approx(0.9 * (1 / 27), rel=1e-9)

    def test_maximum_at_pair_midpoint(self, gamma):
        """Along a two-phase edge the obstacle peaks at phi = 1/2."""
        vals = []
        for x in (0.3, 0.5, 0.7):
            phi = np.array([x, 1 - x, 0.0, 0.0]).reshape(4, 1)
            vals.append(energy_density(phi, gamma, 0.0)[0])
        assert vals[1] > vals[0]
        assert vals[1] > vals[2]


class TestDerivative:
    def test_matches_finite_difference(self, gamma):
        rng = np.random.default_rng(2)
        phi = rng.uniform(0.05, 0.5, size=(4, 1))
        d = dW_dphi(phi, gamma, 0.05)
        eps = 1e-7
        for a in range(4):
            dp = np.zeros((4, 1))
            dp[a] = eps
            num = (
                energy_density(phi + dp, gamma, 0.05)
                - energy_density(phi - dp, gamma, 0.05)
            ) / (2 * eps)
            assert d[a, 0] == pytest.approx(num[0], abs=1e-6)

    def test_zero_gamma_triple_skips_term(self, gamma):
        phi = np.full((4, 2), 0.25)
        d0 = dW_dphi(phi, gamma, 0.0)
        d1 = dW_dphi(phi, gamma, 1.0)
        assert not np.allclose(d0, d1)

    def test_bulk_derivative_structure(self, gamma):
        """In bulk phase b, dW/dphi_a = pref*gamma for a != b, 0 for a = b."""
        phi = np.zeros((4, 1))
        phi[1] = 1.0
        d = dW_dphi(phi, gamma, 0.3)
        assert d[1, 0] == pytest.approx(0.0)
        for a in (0, 2, 3):
            assert d[a, 0] == pytest.approx(OBSTACLE_PREFACTOR * 0.01)
