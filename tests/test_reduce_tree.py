"""Tests of the log2(P) pairwise reduction schedule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import run_spmd
from repro.simmpi.reduce_tree import reduction_rounds, run_pairwise_reduction


class TestSchedule:
    def test_power_of_two(self):
        rounds = reduction_rounds(8)
        assert len(rounds) == 3
        assert rounds[0] == [(0, 1), (2, 3), (4, 5), (6, 7)]
        assert rounds[1] == [(0, 2), (4, 6)]
        assert rounds[2] == [(0, 4)]

    def test_single_rank(self):
        assert reduction_rounds(1) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            reduction_rounds(0)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 200))
    def test_every_rank_reduced_exactly_once(self, n):
        """Each rank > 0 sends exactly once; everything funnels to 0."""
        senders = []
        for pairs in reduction_rounds(n):
            for recv, send in pairs:
                assert recv < send
                senders.append(send)
        assert sorted(senders) == list(range(1, n))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 128))
    def test_log_round_count(self, n):
        import math

        assert len(reduction_rounds(n)) == math.ceil(math.log2(n))

    def test_half_participation(self):
        """In each round at most half of the remaining ranks send."""
        rounds = reduction_rounds(16)
        active = 16
        for pairs in rounds:
            assert len(pairs) <= active // 2
            active -= len(pairs)


class TestExecution:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 8, 11])
    def test_concatenation_reduction(self, n):
        def fn(comm):
            return run_pairwise_reduction(comm, [comm.rank], lambda a, b: a + b)

        res = run_spmd(n, fn)
        assert sorted(res[0]) == list(range(n))
        assert all(r is None for r in res[1:])

    def test_combine_order_preserved(self):
        """Receivers combine their own value first (left operand)."""
        def fn(comm):
            return run_pairwise_reduction(
                comm, str(comm.rank), lambda a, b: f"({a}+{b})"
            )

        res = run_spmd(4, fn)
        assert res[0] == "((0+1)+(2+3))"
