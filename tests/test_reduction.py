"""Tests of the hierarchical gather-stitch-coarsen pipeline."""

import numpy as np
import pytest

from repro.io.marching_cubes import extract_isosurface
from repro.io.reduction import ReductionLimits, hierarchical_mesh_reduction
from repro.simmpi import run_spmd


def sphere_volume(n=20, r=6.5):
    x, y, z = np.meshgrid(*[np.arange(n, dtype=float)] * 3, indexing="ij")
    rad = np.sqrt((x - n / 2) ** 2 + (y - n / 2) ** 2 + (z - n / 2) ** 2)
    return 1.0 / (1.0 + np.exp(rad - r))


def split_volume(vol, n_ranks):
    """Slabs along x with one layer of ghost overlap."""
    n = vol.shape[0]
    bounds = np.linspace(0, n - 1, n_ranks + 1).astype(int)
    pieces = []
    for r in range(n_ranks):
        lo, hi = bounds[r], bounds[r + 1]
        pieces.append((vol[lo : hi + 1], lo))
    return pieces


@pytest.mark.parametrize("n_ranks", [1, 2, 4, 5])
def test_reduction_produces_closed_global_mesh(n_ranks):
    vol = sphere_volume()
    pieces = split_volume(vol, n_ranks)

    def fn(comm):
        sub, off = pieces[comm.rank]
        local = extract_isosurface(sub, 0.5, origin=(off, 0, 0))
        return hierarchical_mesh_reduction(
            comm, local, ReductionLimits(local_ratio=0.8, merge_ratio=0.8)
        )

    results = run_spmd(n_ranks, fn)
    final = results[0]
    assert final is not None
    assert all(r is None for r in results[1:])
    assert final.is_watertight()
    assert final.euler_characteristic() == 2
    whole = extract_isosurface(vol, 0.5)
    assert final.area() == pytest.approx(whole.area(), rel=0.05)


def test_coarsening_actually_reduces():
    vol = sphere_volume(n=22, r=7.5)
    pieces = split_volume(vol, 2)

    def fn(comm):
        sub, off = pieces[comm.rank]
        local = extract_isosurface(sub, 0.5, origin=(off, 0, 0))
        reduced = hierarchical_mesh_reduction(
            comm, local, ReductionLimits(local_ratio=0.4, merge_ratio=0.6)
        )
        return local.n_faces, reduced

    results = run_spmd(2, fn)
    total_in = sum(r[0] for r in results)
    final = results[0][1]
    assert final.n_faces < 0.6 * total_in


def test_memory_guard_defers_coarsening():
    vol = sphere_volume()
    pieces = split_volume(vol, 2)

    def fn(comm):
        sub, off = pieces[comm.rank]
        local = extract_isosurface(sub, 0.5, origin=(off, 0, 0))
        return local.n_faces, hierarchical_mesh_reduction(
            comm, local, ReductionLimits(local_ratio=1.0, merge_ratio=0.5,
                                         max_faces=1),
        )

    results = run_spmd(2, fn)
    final = results[0][1]
    # guard tripped: meshes merged without the post-stitch coarsening
    assert final.n_faces >= results[0][0]
