"""Tests of the region classification (bulk/interface/front)."""

import numpy as np
import pytest

from repro.core.regions import classify, front_position


def three_zone_field(nz=12, n=4, ell=3):
    """Solid below, diffuse band, liquid above; shape (n, 1, nz)."""
    phi = np.zeros((n, 1, nz))
    lf = np.clip((np.arange(nz) - 4) / 4.0, 0.0, 1.0)
    phi[ell, 0] = lf
    phi[0, 0] = 1.0 - lf
    return phi


class TestClassify:
    def test_partition(self):
        phi = three_zone_field()
        m = classify(phi, liquid_index=3)
        total = m.interface | m.liquid | m.solid
        assert total.all()
        assert not (m.liquid & m.solid).any()
        assert not (m.interface & m.liquid).any()

    def test_front_subset_of_interface(self):
        phi = three_zone_field()
        m = classify(phi, liquid_index=3)
        assert (m.front <= m.interface).all()
        assert m.front.any()

    def test_counts(self):
        phi = three_zone_field()
        c = classify(phi, liquid_index=3).counts()
        assert c["interface"] == 3  # lf in (0,1) strictly: z=5..7
        assert c["solid"] == 5
        assert c["liquid"] == 4

    def test_pure_liquid(self):
        phi = np.zeros((4, 2, 5))
        phi[3] = 1.0
        m = classify(phi, liquid_index=3)
        assert m.liquid.all()
        assert not m.interface.any()

    def test_bulk_property(self):
        phi = three_zone_field()
        m = classify(phi, liquid_index=3)
        np.testing.assert_array_equal(m.bulk, ~m.interface)


class TestFrontPosition:
    def test_sharp_front(self):
        phi = np.zeros((2, 3, 10))
        phi[1] = 1.0  # all liquid
        phi[1, :, :4] = 0.0
        phi[0, :, :4] = 1.0
        assert front_position(phi, liquid_index=1) == pytest.approx(3.0)

    def test_all_liquid_returns_sentinel(self):
        phi = np.zeros((2, 3, 10))
        phi[1] = 1.0
        assert front_position(phi, liquid_index=1) == -1.0

    def test_mixed_columns(self):
        phi = np.zeros((2, 2, 10))
        phi[1] = 1.0
        phi[1, 0, :3] = 0.0
        phi[0, 0, :3] = 1.0
        phi[1, 1, :5] = 0.0
        phi[0, 1, :5] = 1.0
        assert front_position(phi, liquid_index=1) == pytest.approx((2 + 4) / 2)
