"""Tests of the rotating, quarantining checkpoint store."""

import numpy as np
import pytest

from repro.core.solver import Simulation
from repro.resilience import CheckpointStore, Fault, FaultPlan


@pytest.fixture
def sim():
    s = Simulation(shape=(5, 8), kernel="buffered")
    s.initialize_voronoi(seed=3, n_seeds=3)
    return s


class TestRotation:
    def test_keeps_last_k(self, sim, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for _ in range(4):
            sim.step(2)
            store.save(sim)
        paths = store.checkpoints()
        assert len(paths) == 2
        steps = [int(p.stem.split("-")[-1]) for p in paths]
        assert steps == [6, 8]

    def test_save_state_names_by_step(self, sim, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        sim.step(5)
        path = store.save(sim)
        assert path == store.path_for(5)
        assert path.exists()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)


class TestLoadLatest:
    def test_empty_store_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load_latest() is None

    def test_loads_newest(self, sim, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        for _ in range(3):
            sim.step(1)
            store.save(sim)
        state = store.load_latest()
        assert state["step_count"] == 3
        np.testing.assert_allclose(state["phi"], sim.phi.interior_src, atol=1e-6)

    def test_corrupt_newest_quarantined_older_served(self, sim, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        sim.step(1)
        store.save(sim)
        sim.step(1)
        newest = store.save(sim)
        blob = newest.read_bytes()
        newest.write_bytes(blob[: len(blob) // 3])

        state = store.load_latest()
        assert state["step_count"] == 1
        quarantined = store.quarantined()
        assert [p.name for p in quarantined] == [newest.name]
        assert not newest.exists()

    def test_crc_corrupt_newest_quarantined_older_served(self, sim, tmp_path):
        """A bit-flipped field (valid archive, wrong CRC) is quarantined.

        Unlike truncation, the file still opens as a perfectly good npz —
        only the integrity manifest's checksum catches the corruption.
        """
        store = CheckpointStore(tmp_path, keep=3)
        sim.step(1)
        store.save(sim)
        sim.step(1)
        newest = store.save(sim)

        with np.load(newest) as data:
            payload = {name: np.array(data[name]) for name in data.files}
        payload["phi"].flat[0] += 1.0  # flip a value, keep manifest intact
        with open(newest, "wb") as fh:
            np.savez_compressed(fh, **payload)

        state = store.load_latest()
        assert state["step_count"] == 1
        assert [p.name for p in store.quarantined()] == [newest.name]
        assert not newest.exists()

    def test_all_corrupt_returns_none(self, sim, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        sim.step(1)
        store.save(sim)
        sim.step(1)
        store.save(sim)
        for p in store.checkpoints():
            p.write_bytes(b"not a checkpoint at all")
        assert store.load_latest() is None
        assert len(store.quarantined()) == 2
        assert store.checkpoints() == []


class TestTruncationFault:
    def test_scheduled_truncation_corrupts_that_generation(self, sim, tmp_path):
        plan = FaultPlan([Fault(kind="ckpt_truncate", step=2)], seed=5)
        store = CheckpointStore(tmp_path, keep=3, fault_plan=plan)
        sim.step(1)
        store.save(sim)
        sim.step(1)
        store.save(sim)  # this write is truncated by the fault
        assert len(plan.fired()) == 1
        state = store.load_latest()
        assert state["step_count"] == 1
        assert len(store.quarantined()) == 1
