"""Restart determinism: checkpoint at N, restore, continue to M.

The continued run must match an uninterrupted run to the float32
rounding of the stored state — serial and distributed (including the
Algorithm 2 communication-hiding schedule).
"""

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.core.solver import Simulation
from repro.distributed import DistributedSimulation
from repro.resilience import (
    CheckpointStore,
    Fault,
    FaultPlan,
    ShardedCheckpointStore,
    run_campaign,
)
from repro.thermo.system import TernaryEutecticSystem

SHAPE = (12, 20)
N, M = 4, 9  # checkpoint step, final step


@pytest.fixture(scope="module")
def setup():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(system, SHAPE, solid_height=7, n_seeds=4)
    phi0 = smooth_phase_field(phi0, 2)
    return system, phi0, mu0


def test_serial_restart_matches_uninterrupted(setup, tmp_path):
    system, phi0, mu0 = setup
    sim = Simulation(shape=SHAPE, system=system, kernel="buffered")
    sim.initialize(phi0, mu0)
    sim.step(N)
    store = CheckpointStore(tmp_path, keep=2)
    store.save(sim)
    sim.step(M - N)  # uninterrupted continuation

    fresh = Simulation(
        shape=SHAPE, system=system, kernel="buffered",
        params=sim.params, temperature=sim.temperature,
    )
    fresh.load_state(store.load_latest())
    assert fresh.step_count == N
    assert fresh.time == pytest.approx(N * sim.params.dt)
    fresh.step(M - N)
    np.testing.assert_allclose(
        fresh.phi.interior_src, sim.phi.interior_src, atol=1e-4
    )
    np.testing.assert_allclose(
        fresh.mu.interior_src, sim.mu.interior_src, atol=1e-4
    )


@pytest.mark.parametrize("overlap", [False, True])
def test_distributed_restart_matches_uninterrupted(setup, tmp_path, overlap):
    system, phi0, mu0 = setup
    dsim = DistributedSimulation(
        SHAPE, (2, 2), system=system, kernel="buffered", overlap=overlap
    )
    uninterrupted = dsim.run(M, phi0, mu0)

    first = dsim.run(N, phi0, mu0)
    store = CheckpointStore(tmp_path / f"overlap-{overlap}", keep=2)
    store.save_state({
        "phi": first.phi, "mu": first.mu,
        "time": N * dsim.params.dt, "step_count": N,
        "z_offset": 0, "kernel": dsim.kernel,
    })
    state = store.load_latest()
    resumed = dsim.run(
        M - N, state["phi"], state["mu"],
        t0=state["time"], step0=state["step_count"],
    )
    np.testing.assert_allclose(resumed.phi, uninterrupted.phi, atol=1e-4)
    np.testing.assert_allclose(resumed.mu, uninterrupted.mu, atol=1e-4)


@pytest.mark.faults
def test_elastic_shrink_matches_checkpoint_restart(setup, tmp_path):
    """Acceptance: a campaign that loses a rank mid-run shrinks N -> N-1,
    resumes from the last committed sharded checkpoint and finishes with
    fields **bitwise identical** to an unfaulted run that checkpointed
    and restarted at the same step."""
    system, phi0, mu0 = setup
    dsim = DistributedSimulation(SHAPE, (2, 2), system=system, kernel="buffered")
    plan = FaultPlan([Fault(kind="kill_rank", step=5, rank=2)])
    print(plan.describe())
    store = ShardedCheckpointStore(tmp_path / "elastic", fault_plan=plan)
    result = run_campaign(
        dsim, M, phi0, mu0, store=store, checkpoint_every=2, fault_plan=plan
    )
    assert result.steps == M
    assert result.rank_failures == 1
    assert result.shrinks == 1
    assert result.final_ranks == 3

    # reference: unfaulted 4-rank run that checkpoints and restarts at the
    # same boundary (step 4, the last commit before the step-5 kill)
    ref_dsim = DistributedSimulation(
        SHAPE, (2, 2), system=system, kernel="buffered"
    )
    first = ref_dsim.run(N, phi0, mu0)
    ref_store = ShardedCheckpointStore(tmp_path / "ref")
    ref_store.save_global(
        {"phi": first.phi, "mu": first.mu, "time": N * ref_dsim.params.dt,
         "step_count": N, "kernel": ref_dsim.kernel},
        forest=ref_dsim.forest, owner=ref_dsim.owner, n_ranks=ref_dsim.n_ranks,
    )
    state = ref_store.load_latest()
    reference = ref_dsim.run(
        M - N, state["phi"], state["mu"], t0=state["time"], step0=N
    )
    np.testing.assert_array_equal(result.phi, reference.phi)
    np.testing.assert_array_equal(result.mu, reference.mu)


@pytest.mark.faults
@pytest.mark.hangs
@pytest.mark.timeout(600)
@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="process-backend hang containment needs the fork start method",
)
def test_watchdog_contains_stalled_process_rank(setup, tmp_path, monkeypatch):
    """Acceptance (ISSUE 7): a rank that *hangs* (stops communicating
    without raising) mid-campaign on the process backend is detected by
    the liveness watchdog within the deadline, killed, the campaign
    shrinks 4 -> 3 and resumes from the newest sharded checkpoint with
    fields **bitwise identical** to a checkpoint-restarted reference —
    all in bounded wall-clock, nowhere near the stall's 30 s cap."""
    import json
    import time as _time

    from repro.telemetry import RunTelemetry
    from repro.telemetry.report import validate_run_report

    monkeypatch.setenv("REPRO_SIMMPI_HANG_TIMEOUT", "1.5")
    system, phi0, mu0 = setup
    dsim = DistributedSimulation(
        SHAPE, (2, 2), system=system, kernel="buffered", backend="process"
    )
    plan = FaultPlan([Fault(kind="rank_stall", step=5, rank=2, delay=30.0)])
    print(plan.describe())
    store = ShardedCheckpointStore(tmp_path / "elastic", fault_plan=plan)
    t0 = _time.monotonic()
    result = run_campaign(
        dsim, M, phi0, mu0, store=store, checkpoint_every=2,
        fault_plan=plan,
        telemetry=RunTelemetry(directory=tmp_path / "tel", run_id="hang"),
    )
    elapsed = _time.monotonic() - t0
    assert elapsed < 120, f"containment took {elapsed:.1f}s"
    assert result.steps == M
    assert result.rank_failures == 1
    assert result.shrinks == 1
    assert result.final_ranks == 3
    assert len(result.faults_fired) == 1  # child fire mirrored to parent

    # the versioned report carries the liveness section
    validate_run_report(result.report)
    liveness = result.report["liveness"]
    assert liveness["hangs_detected"] == 1
    assert liveness["stalls_injected"] == 1
    assert liveness["watchdog_enabled"] is True

    # hang/timeout events appear in the merged event log
    merged = (tmp_path / "tel" / "events-merged.jsonl").read_text()
    kinds = [json.loads(line)["kind"] for line in merged.splitlines()]
    assert "hang_detected" in kinds
    assert "rank_failed" in kinds
    assert "comm_shrunk" in kinds

    # bitwise-identical resume: reference run checkpoints and restarts
    # at the same boundary (step 4, the last commit before the stall)
    ref_dsim = DistributedSimulation(
        SHAPE, (2, 2), system=system, kernel="buffered"
    )
    first = ref_dsim.run(N, phi0, mu0)
    ref_store = ShardedCheckpointStore(tmp_path / "ref")
    ref_store.save_global(
        {"phi": first.phi, "mu": first.mu, "time": N * ref_dsim.params.dt,
         "step_count": N, "kernel": ref_dsim.kernel},
        forest=ref_dsim.forest, owner=ref_dsim.owner, n_ranks=ref_dsim.n_ranks,
    )
    state = ref_store.load_latest()
    reference = ref_dsim.run(
        M - N, state["phi"], state["mu"], t0=state["time"], step0=N
    )
    np.testing.assert_array_equal(result.phi, reference.phi)
    np.testing.assert_array_equal(result.mu, reference.mu)


def test_distributed_chunked_equals_single_run(setup):
    """t0/step0 continuation without a checkpoint is exact (float64)."""
    system, phi0, mu0 = setup
    dsim = DistributedSimulation(SHAPE, (2, 1), system=system, kernel="buffered")
    whole = dsim.run(M, phi0, mu0)
    first = dsim.run(N, phi0, mu0)
    rest = dsim.run(
        M - N, first.phi, first.mu, t0=N * dsim.params.dt, step0=N
    )
    np.testing.assert_array_equal(rest.phi, whole.phi)
    np.testing.assert_array_equal(rest.mu, whole.mu)
