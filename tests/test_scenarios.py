"""Tests of the benchmark scenario builder."""

import numpy as np
import pytest

from repro.core.regions import classify
from repro.core.scenarios import SCENARIOS, fill_ghosts_periodic, make_scenario
from repro.core.simplex import in_simplex


class TestMakeScenario:
    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("plasma", (4, 4, 4))

    def test_dim_mismatch_raises(self):
        from repro.core.parameters import PhaseFieldParameters
        from repro.thermo.system import TernaryEutecticSystem

        system = TernaryEutecticSystem()
        p2 = PhaseFieldParameters.for_system(system, dim=2)
        with pytest.raises(ValueError, match="dim"):
            make_scenario("liquid", (4, 4, 4), system, p2)

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_simplex_everywhere(self, name):
        phi, mu, tg, system, params = make_scenario(name, (6, 6, 8))
        assert in_simplex(phi.reshape(4, -1), tol=1e-9).all()

    def test_liquid_is_pure_melt(self):
        phi, mu, tg, system, params = make_scenario("liquid", (5, 5, 6))
        interior = phi[(slice(None),) + (slice(1, -1),) * 3]
        np.testing.assert_allclose(interior[system.liquid_index], 1.0)

    def test_solid_has_no_melt(self):
        phi, mu, tg, system, params = make_scenario(
            "solid", (24, 6, 6), lamella_width=2
        )
        interior = phi[(slice(None),) + (slice(1, -1),) * 3]
        np.testing.assert_allclose(interior[system.liquid_index], 0.0)
        # all three solids present (lamellae)
        for s in system.phase_set.solid_indices:
            assert interior[s].max() == 1.0

    def test_interface_has_front(self):
        phi, mu, tg, system, params = make_scenario("interface", (6, 6, 12))
        interior = phi[(slice(None),) + (slice(1, -1),) * 3]
        masks = classify(interior, system.liquid_index)
        assert masks.front.any()
        assert masks.liquid.any()
        assert masks.solid.any()

    def test_temperature_gradient_and_undercooling(self):
        phi, mu, tg, system, params = make_scenario(
            "interface", (4, 4, 10), undercooling=3.0
        )
        assert len(tg) == 12  # nz + 2 ghost slices
        assert np.all(np.diff(tg) > 0)  # warmer towards the melt
        mid = tg[len(tg) // 2]
        assert mid == pytest.approx(system.t_eutectic - 3.0, abs=0.5)

    def test_2d_scenario(self):
        phi, mu, tg, system, params = make_scenario("interface", (8, 12))
        assert phi.shape == (4, 10, 14)
        assert params.dim == 2


class TestFillGhostsPeriodic:
    def test_wraps_all_axes(self):
        rng = np.random.default_rng(0)
        a = np.zeros((2, 5, 6))
        a[:, 1:-1, 1:-1] = rng.normal(size=(2, 3, 4))
        fill_ghosts_periodic(a, 2)
        np.testing.assert_array_equal(a[:, 0, 1:-1], a[:, -2, 1:-1])
        np.testing.assert_array_equal(a[:, -1, 1:-1], a[:, 1, 1:-1])
        np.testing.assert_array_equal(a[:, 1:-1, 0], a[:, 1:-1, -2])

    def test_corners_propagate(self):
        a = np.zeros((4, 4))
        a[1:-1, 1:-1] = [[1.0, 2.0], [3.0, 4.0]]
        fill_ghosts_periodic(a, 2)
        # corner ghost equals the diagonally opposite interior cell
        assert a[0, 0] == 4.0
        assert a[-1, -1] == 1.0
