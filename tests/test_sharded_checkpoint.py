"""Two-phase sharded checkpoints: commit protocol, N→M reshard, I/O faults.

The elastic-restart format of :mod:`repro.io.sharded` /
:class:`repro.resilience.store.ShardedCheckpointStore`: per-rank shards
are durable only once rank 0 publishes the manifest, a checkpoint
written by N ranks restores on any M >= 1 ranks, and checkpoint writes
survive injected transient I/O failures through bounded retries.
"""

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.distributed import DistributedSimulation
from repro.io.checkpoint import CheckpointError
from repro.io.sharded import load_shard, reshard, write_manifest
from repro.resilience import (
    Fault,
    FaultPlan,
    RetryPolicy,
    ShardedCheckpointStore,
    retry_io,
)
from repro.thermo.system import TernaryEutecticSystem

SHAPE = (12, 20)
N, M = 4, 9  # checkpoint step, final step


@pytest.fixture(scope="module")
def setup():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(system, SHAPE, solid_height=7, n_seeds=4)
    phi0 = smooth_phase_field(phi0, 2)
    dsim = DistributedSimulation(SHAPE, (2, 2), system=system, kernel="buffered")
    return dsim, phi0, mu0


def _state(dsim, phi, mu, step):
    return {
        "phi": phi, "mu": mu, "time": step * dsim.params.dt,
        "step_count": step, "kernel": dsim.kernel,
    }


def _rank_blocks(dsim, phi, mu, rank):
    """The (phi, mu) interior bundles of the blocks *rank* owns."""
    blocks = {}
    for b in dsim.forest.blocks:
        if dsim.owner[b.id] != rank:
            continue
        sl = (slice(None),) + tuple(
            slice(o, o + s) for o, s in zip(b.offset, b.shape)
        )
        blocks[b.id] = (phi[sl], mu[sl])
    return blocks


class TestTwoPhaseCommit:
    def test_save_load_roundtrip(self, setup, tmp_path):
        dsim, phi0, mu0 = setup
        first = dsim.run(N, phi0, mu0)
        store = ShardedCheckpointStore(tmp_path)
        store.save_global(_state(dsim, first.phi, first.mu, N),
                          forest=dsim.forest, owner=dsim.owner,
                          n_ranks=dsim.n_ranks)
        assert store.steps() == [N]
        state = store.load_latest()
        assert state["step_count"] == N
        assert state["time"] == pytest.approx(N * dsim.params.dt)
        # float32 storage is the only loss
        np.testing.assert_array_equal(
            state["phi"], first.phi.astype(np.float32).astype(np.float64)
        )
        np.testing.assert_array_equal(
            state["mu"], first.mu.astype(np.float32).astype(np.float64)
        )

    def test_orphan_shards_without_manifest_never_load(self, setup, tmp_path):
        """A write phase with no publish is not a checkpoint."""
        dsim, phi0, mu0 = setup
        store = ShardedCheckpointStore(tmp_path)
        for rank in range(dsim.n_ranks):
            store.write_rank_shard(
                rank=rank, step=N, blocks=_rank_blocks(dsim, phi0, mu0, rank)
            )
        assert len(store.shards()) == dsim.n_ranks
        assert store.steps() == []
        assert store.load_latest() is None

    def test_interrupted_generation_falls_back_to_committed(
        self, setup, tmp_path
    ):
        """Shards of a crashed checkpoint never shadow the committed one."""
        dsim, phi0, mu0 = setup
        store = ShardedCheckpointStore(tmp_path)
        store.save_global(_state(dsim, phi0, mu0, N),
                          forest=dsim.forest, owner=dsim.owner,
                          n_ranks=dsim.n_ranks)
        # newer write phase interrupted before the manifest was published
        store.write_rank_shard(
            rank=0, step=M, blocks=_rank_blocks(dsim, phi0, mu0, 0)
        )
        state = store.load_latest()
        assert state["step_count"] == N

    def test_manifest_requires_full_block_coverage(self, setup, tmp_path):
        dsim, phi0, mu0 = setup
        store = ShardedCheckpointStore(tmp_path)
        entries = [
            store.write_rank_shard(
                rank=rank, step=N, blocks=_rank_blocks(dsim, phi0, mu0, rank)
            )
            for rank in range(dsim.n_ranks - 1)  # one rank missing
        ]
        with pytest.raises(CheckpointError, match="cover"):
            write_manifest(
                store.manifest_for(N), entries, step=N, time=0.0,
                topology={**dsim.forest.meta(), "n_ranks": dsim.n_ranks,
                          "owner": list(dsim.owner)},
            )

    def test_duplicate_ranks_rejected(self, setup, tmp_path):
        dsim, phi0, mu0 = setup
        store = ShardedCheckpointStore(tmp_path)
        entry = store.write_rank_shard(
            rank=0, step=N, blocks=_rank_blocks(dsim, phi0, mu0, 0)
        )
        with pytest.raises(CheckpointError, match="duplicate"):
            write_manifest(
                store.manifest_for(N), [entry, entry], step=N, time=0.0,
                topology={**dsim.forest.meta(), "n_ranks": dsim.n_ranks,
                          "owner": list(dsim.owner)},
            )


class TestReshardRestore:
    @pytest.mark.parametrize("m_ranks", [2, 1])
    def test_restore_on_fewer_ranks_is_bitwise(self, setup, tmp_path, m_ranks):
        """A 4-rank checkpoint resumed on M ranks matches bit for bit."""
        dsim, phi0, mu0 = setup
        first = dsim.run(N, phi0, mu0)
        store = ShardedCheckpointStore(tmp_path)
        store.save_global(_state(dsim, first.phi, first.mu, N),
                          forest=dsim.forest, owner=dsim.owner,
                          n_ranks=dsim.n_ranks)
        state = store.load_latest()
        resumed4 = dsim.run(M - N, state["phi"], state["mu"],
                            t0=state["time"], step0=N)
        small = dsim.shrunk(m_ranks)
        assert small.n_ranks == m_ranks
        resumed_m = small.run(M - N, state["phi"], state["mu"],
                              t0=state["time"], step0=N)
        np.testing.assert_array_equal(resumed_m.phi, resumed4.phi)
        np.testing.assert_array_equal(resumed_m.mu, resumed4.mu)

    def test_reshard_partitions_all_blocks(self, setup, tmp_path):
        dsim, phi0, mu0 = setup
        store = ShardedCheckpointStore(tmp_path)
        store.save_global(_state(dsim, phi0, mu0, 0),
                          forest=dsim.forest, owner=dsim.owner,
                          n_ranks=dsim.n_ranks)
        state = store.load_resharded(2)
        plan = state["reshard"]
        assert plan["n_ranks"] == 2
        seen = sorted(
            bid for blocks in plan["blocks_by_rank"].values() for bid in blocks
        )
        assert seen == [b.id for b in dsim.forest.blocks]
        for rank, blocks in plan["blocks_by_rank"].items():
            for bid in blocks:
                assert plan["owner"][bid] == rank

    def test_reshard_onto_too_many_ranks_rejected(self, setup, tmp_path):
        dsim, phi0, mu0 = setup
        store = ShardedCheckpointStore(tmp_path)
        store.save_global(_state(dsim, phi0, mu0, 0),
                          forest=dsim.forest, owner=dsim.owner,
                          n_ranks=dsim.n_ranks)
        state = store.load_latest()
        with pytest.raises(CheckpointError, match="reshard"):
            reshard(state, dsim.forest.n_blocks + 1)


class TestQuarantine:
    def _corrupt_one_array(self, shard_file):
        """Bit-flip a field value inside a shard, keeping the file valid."""
        with np.load(shard_file) as data:
            payload = {name: np.array(data[name]) for name in data.files}
        name = next(n for n in payload if n.startswith("phi_"))
        payload[name] = np.array(payload[name])
        payload[name].flat[0] += 1.0
        with open(shard_file, "wb") as fh:
            np.savez_compressed(fh, **payload)

    def test_crc_corrupt_generation_quarantined_older_served(
        self, setup, tmp_path
    ):
        dsim, phi0, mu0 = setup
        store = ShardedCheckpointStore(tmp_path)
        for step in (N, M):
            store.save_global(_state(dsim, phi0, mu0, step),
                              forest=dsim.forest, owner=dsim.owner,
                              n_ranks=dsim.n_ranks)
        newest = [p for p in store.shards() if store._step_of(p) == M]
        self._corrupt_one_array(newest[0])

        state = store.load_latest()
        assert state["step_count"] == N
        # the whole generation — manifest and all shards — is moved aside
        names = {p.name for p in store.quarantined()}
        assert store.manifest_for(M).name in names
        assert {p.name for p in newest} <= names
        assert store.steps() == [N]


class TestRotation:
    def test_keeps_last_k_generations(self, setup, tmp_path):
        dsim, phi0, mu0 = setup
        store = ShardedCheckpointStore(tmp_path, keep=2)
        for step in range(1, 5):
            store.save_global(_state(dsim, phi0, mu0, step),
                              forest=dsim.forest, owner=dsim.owner,
                              n_ranks=dsim.n_ranks)
        assert store.steps() == [3, 4]
        assert {store._step_of(p) for p in store.shards()} == {3, 4}

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            ShardedCheckpointStore(tmp_path, keep=0)


class TestRetryIo:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        retries = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        result = retry_io(
            flaky, policy=RetryPolicy(attempts=4, base_delay=1e-4),
            on_retry=lambda a, e, d: retries.append((a, d)),
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(retries) == 2

    def test_exhausts_and_reraises(self):
        def broken():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            retry_io(broken, policy=RetryPolicy(attempts=3, base_delay=1e-4))

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(attempts=4, base_delay=1e-4)

        def delays(seed):
            out = []

            def broken():
                raise OSError("x")

            with pytest.raises(OSError):
                retry_io(broken, policy=policy, seed=seed,
                         on_retry=lambda a, e, d: out.append(d))
            return out

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(attempts=6, base_delay=0.001, max_delay=0.004,
                             jitter=0.0)
        rng = np.random.default_rng(0)
        raw = [policy.delay_for(a, rng) for a in range(5)]
        assert raw == [0.001, 0.002, 0.004, 0.004, 0.004]


class TestInjectedIoFaults:
    def test_enospc_is_retried_and_write_succeeds(self, setup, tmp_path):
        dsim, phi0, mu0 = setup
        plan = FaultPlan([Fault(kind="io_enospc", step=N, rank=0)])
        store = ShardedCheckpointStore(
            tmp_path, fault_plan=plan,
            retry_policy=RetryPolicy(attempts=4, base_delay=1e-4),
        )
        entry = store.write_rank_shard(
            rank=0, step=N, blocks=_rank_blocks(dsim, phi0, mu0, 0)
        )
        assert store.stats["io_retries"] == 1
        assert len(plan.fired()) == 1
        load_shard(store.shard_for(N, 0), entry)  # verifies CRCs

    def test_torn_write_retry_leaves_complete_file(self, setup, tmp_path):
        """The retry's atomic rewrite replaces the torn file."""
        dsim, phi0, mu0 = setup
        plan = FaultPlan([Fault(kind="io_torn_write", step=N, rank=0)])
        store = ShardedCheckpointStore(
            tmp_path, fault_plan=plan,
            retry_policy=RetryPolicy(attempts=4, base_delay=1e-4),
        )
        entry = store.write_rank_shard(
            rank=0, step=N, blocks=_rank_blocks(dsim, phi0, mu0, 0)
        )
        assert store.stats["io_retries"] == 1
        load_shard(store.shard_for(N, 0), entry)

    def test_persistent_outage_exhausts_and_raises(self, setup, tmp_path):
        dsim, phi0, mu0 = setup
        plan = FaultPlan(
            [Fault(kind="io_enospc", step=N, rank=0) for _ in range(8)]
        )
        store = ShardedCheckpointStore(
            tmp_path, fault_plan=plan,
            retry_policy=RetryPolicy(attempts=3, base_delay=1e-4),
        )
        with pytest.raises(OSError):
            store.write_rank_shard(
                rank=0, step=N, blocks=_rank_blocks(dsim, phi0, mu0, 0)
            )
        assert store.stats["io_retries"] == 2  # attempts - 1
