"""Tests of the simulated MPI runtime (point-to-point + collectives)."""

import numpy as np
import pytest

from repro.simmpi import run_spmd
from repro.simmpi.comm import ANY_SOURCE, ANY_TAG


class TestRuntime:
    def test_single_rank(self):
        assert run_spmd(1, lambda c: c.rank) == [0]

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError, match="rank"):
            run_spmd(0, lambda c: None)

    def test_results_in_rank_order(self):
        assert run_spmd(5, lambda c: c.rank * 2) == [0, 2, 4, 6, 8]

    def test_exception_propagates(self):
        def bad(comm):
            if comm.rank == 2:
                raise RuntimeError("kaput")
            comm.barrier()

        with pytest.raises(RuntimeError, match="kaput"):
            run_spmd(4, bad)

    def test_failure_unblocks_receivers(self):
        def bad(comm):
            if comm.rank == 0:
                raise ValueError("dead sender")
            comm.recv(source=0, tag=1)

        with pytest.raises(ValueError, match="dead sender"):
            run_spmd(3, bad)


class TestPointToPoint:
    def test_ring_exchange(self):
        def ring(comm):
            r, n = comm.rank, comm.size
            got = comm.sendrecv(r, dest=(r + 1) % n, source=(r - 1) % n)
            return got

        assert run_spmd(4, ring) == [3, 0, 1, 2]

    def test_numpy_payload_copied(self):
        def fn(comm):
            if comm.rank == 0:
                data = np.zeros(4)
                comm.send(data, 1, tag=1)
                data[...] = 99.0  # mutation after send must not leak
                comm.barrier()
                return None
            got = None
            if comm.rank == 1:
                got = comm.recv(0, tag=1)
            comm.barrier()
            return None if got is None else got.copy()

        res = run_spmd(2, fn)
        np.testing.assert_allclose(res[1], 0.0)

    def test_tag_matching(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=10)
                comm.send("b", 1, tag=20)
                return None
            b = comm.recv(0, tag=20)
            a = comm.recv(0, tag=10)
            return (a, b)

        assert run_spmd(2, fn)[1] == ("a", "b")

    def test_wildcards(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(41, 1, tag=7)
                return None
            return comm.recv(ANY_SOURCE, ANY_TAG)

        assert run_spmd(2, fn)[1] == 41

    def test_isend_irecv(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend({"x": 1}, 1, tag=3)
                req.wait()
                return None
            req = comm.irecv(0, tag=3)
            assert not req.test() or True
            return req.wait()

        assert run_spmd(2, fn)[1] == {"x": 1}

    def test_invalid_destination(self):
        def fn(comm):
            comm.send(1, 99)

        with pytest.raises(ValueError, match="destination"):
            run_spmd(2, fn)

    def test_probe(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=5)
                comm.barrier()
                return None
            comm.barrier()
            assert comm.probe(0, tag=5)
            assert not comm.probe(0, tag=6)
            return comm.recv(0, tag=5)

        assert run_spmd(2, fn)[1] == 1


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
class TestCollectives:
    def test_allreduce_sum(self, n):
        res = run_spmd(n, lambda c: c.allreduce(c.rank + 1))
        assert res == [n * (n + 1) // 2] * n

    def test_allreduce_custom_op(self, n):
        res = run_spmd(n, lambda c: c.allreduce(c.rank, op=max))
        assert res == [n - 1] * n

    def test_bcast_from_each_root(self, n):
        def fn(comm):
            out = []
            for root in range(comm.size):
                v = comm.bcast(f"r{root}" if comm.rank == root else None, root)
                out.append(v)
            return out

        res = run_spmd(n, fn)
        for row in res:
            assert row == [f"r{r}" for r in range(n)]

    def test_gather(self, n):
        res = run_spmd(n, lambda c: c.gather(c.rank**2, root=0))
        assert res[0] == [r**2 for r in range(n)]
        assert all(r is None for r in res[1:])

    def test_allgather(self, n):
        res = run_spmd(n, lambda c: c.allgather(c.rank))
        assert res == [list(range(n))] * n

    def test_scatter(self, n):
        def fn(comm):
            items = [f"i{r}" for r in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(items, root=0)

        assert run_spmd(n, fn) == [f"i{r}" for r in range(n)]

    def test_reduce_numpy(self, n):
        def fn(comm):
            return comm.reduce(np.full(3, float(comm.rank)), root=0)

        res = run_spmd(n, fn)
        np.testing.assert_allclose(res[0], sum(range(n)))


class TestStats:
    def test_bytes_accounted(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), 1, tag=1)
                comm.barrier()
                return comm.stats.bytes_sent
            comm.recv(0, tag=1)
            comm.barrier()
            return comm.stats.recvs

        res = run_spmd(2, fn)
        assert res[0] == 80
        assert res[1] == 1

    def test_scatter_root_validation(self):
        def fn(comm):
            if comm.rank == 0:
                comm.scatter([1], root=0)  # wrong length

        with pytest.raises(ValueError, match="one item per rank"):
            run_spmd(2, fn)


class TestElastic:
    """Failure containment: peer death -> RankFailure -> shrink -> continue."""

    def test_rank_failure_is_typed_and_names_the_dead(self):
        from repro.simmpi import RankFailure, run_spmd_elastic

        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("node down")
            try:
                comm.recv(source=1, tag=7)
            except RankFailure as exc:
                return exc.failed_ranks
            return "message arrived?!"

        results, failures = run_spmd_elastic(3, fn)
        assert set(failures) == {1}
        assert isinstance(failures[1], RuntimeError)
        assert failures[1].simmpi_rank == 1
        assert results[0] == (1,)
        assert results[2] == (1,)

    def test_shrink_builds_working_subcommunicator(self):
        from repro.simmpi import RankFailure, run_spmd_elastic

        def fn(comm):
            if comm.rank == 2:
                raise RuntimeError("gone")
            try:
                comm.barrier()
            except RankFailure:
                sub = comm.shrink()
                # dense renumbering preserving old rank order
                total = sub.allreduce(comm.rank)
                return (sub.rank, sub.size, total)
            return "barrier passed?!"

        results, failures = run_spmd_elastic(4, fn)
        assert set(failures) == {2}
        # survivors 0,1,3 -> new ranks 0,1,2; sum of old ranks = 4
        assert results[0] == (0, 3, 4)
        assert results[1] == (1, 3, 4)
        assert results[3] == (2, 3, 4)

    def test_queued_messages_still_drain_after_revocation(self):
        from repro.simmpi import RankFailure, run_spmd_elastic

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(3), dest=1, tag=5)
                raise RuntimeError("died after send")
            # wait until the sender is dead, then drain its message
            while not comm.failed_ranks():
                pass
            got = comm.recv(source=0, tag=5)
            with pytest.raises(RankFailure):
                comm.recv(source=0, tag=6)  # never sent -> typed failure
            return got.sum()

        results, failures = run_spmd_elastic(2, fn)
        assert set(failures) == {0}
        assert results[1] == 3

    def test_contained_failures_do_not_raise(self):
        from repro.simmpi import run_spmd_elastic

        results, failures = run_spmd_elastic(
            1, lambda c: (_ for _ in ()).throw(ValueError("solo death"))
        )
        assert results == [None]
        assert isinstance(failures[0], ValueError)
