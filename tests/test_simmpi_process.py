"""Unit tests of the simmpi process backend (transport + communicator).

Everything here runs real OS processes; keep rank counts and payload
sizes small so the shard stays fast.  Semantics under test mirror the
thread-backend tests: tag matching, collectives, snapshot-on-send,
exception propagation with ``simmpi_rank``, plus the process-specific
pieces — shared-memory staging, bounded channels with posted receives,
and the shared-memory Field allocator.
"""

import os

import numpy as np
import pytest

from repro.grid.field import Field
from repro.simmpi import run_spmd
from repro.simmpi.comm import RemoteError
from repro.simmpi.transport import CHANNEL_SLOTS, INLINE_MAX

PARENT_PID = os.getpid()


# -- helper SPMD functions (module level: picklable under spawn too) ---------

def _rank_id(comm):
    return (comm.rank, comm.size, os.getpid())


def _ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    req = comm.irecv(left, tag=7)
    comm.send(np.full(4, comm.rank, dtype=float), right, tag=7)
    got = req.wait()
    return float(got[0])


def _large_roundtrip(comm, nbytes):
    n = nbytes // 8
    if comm.rank == 0:
        arr = np.arange(n, dtype=float)
        comm.send(arr, 1, tag=3)
        return None
    got = comm.recv(0, tag=3)
    return (got.shape, float(got[0]), float(got[-1]), got.dtype.str)


def _snapshot_semantics(comm):
    # Sender mutates after send but before the receiver consumes: the
    # receiver must still see the values at send time (copy-on-send).
    if comm.rank == 0:
        arr = np.arange(int(INLINE_MAX), dtype=float)  # forces shm staging
        comm.send(arr, 1, tag=1)
        arr.fill(-1.0)
        comm.barrier()
        return None
    comm.barrier()  # enter the barrier before receiving
    got = comm.recv(0, tag=1)
    return float(got[5])


def _collectives(comm):
    total = comm.allreduce(comm.rank)
    gathered = comm.gather(comm.rank * 10, root=0)
    big = comm.bcast(
        np.arange(4096, dtype=float) if comm.rank == 0 else None, root=0
    )
    parts = comm.allgather(np.full(2, comm.rank, dtype=float))
    return total, gathered, float(big[-1]), [float(p[0]) for p in parts]


def _wildcards(comm):
    if comm.rank == 0:
        out = []
        for _ in range(comm.size - 1):
            out.append(comm.recv())  # ANY_SOURCE / ANY_TAG
        return sorted(out)
    comm.send(comm.rank * 100, 0, tag=comm.rank)
    return None


def _boom(comm):
    comm.barrier()
    if comm.rank == 2:
        raise ValueError("rank 2 exploded")
    # peers block so the abort path (not a clean exit) is exercised
    comm.recv(source=2, tag=99)


def _rendezvous(comm):
    """More in-flight large messages than channel slots, both directions.

    With receives posted first this completes (blocked senders make
    progress by completing the peer's posted receives); the old
    send-before-recv pattern would deadlock at CHANNEL_SLOTS+1.
    """
    n_msgs = CHANNEL_SLOTS + 2
    peer = 1 - comm.rank
    reqs = [comm.irecv(peer, tag=i) for i in range(n_msgs)]
    for i in range(n_msgs):
        payload = np.full(int(INLINE_MAX) // 8 + 16, comm.rank * 1000 + i,
                          dtype=float)
        comm.send(payload, peer, tag=i)
    return [float(r.wait()[0]) for r in reqs]


def _sendrecv_cycle(comm):
    peer = 1 - comm.rank
    big = np.full(int(INLINE_MAX) // 8 + 1, float(comm.rank))
    got = comm.sendrecv(big, dest=peer, source=peer)
    return float(got[0])


def _field_in_shared_memory(comm):
    alloc = comm.field_allocator()
    assert alloc is not None
    f = Field(3, (4, 5), allocator=alloc)
    f.src[...] = comm.rank + 0.5
    # the transport tracks every Field backing segment it allocated
    n_segments = len(comm._transport._field_segments)
    return n_segments, float(f.src[0, 0, 0]), f.src.shape


def _self_send(comm):
    req = comm.irecv(comm.rank, tag=5)
    comm.send(np.arange(3, dtype=float), comm.rank, tag=5)
    return float(req.wait().sum())


def _best_fit_freelist(comm):
    """Freelist reuse scenario: small + large segments recycled in the
    order [large, small]; first-fit would burn the large one on the next
    small send and be forced to create a third segment."""
    small = int(INLINE_MAX) // 8 * 2     # 2x inline threshold, in doubles
    large = small * 4
    if comm.rank == 0:
        comm.send(np.full(large, 1.0), 1, tag=1)
        comm.send(np.full(small, 2.0), 1, tag=2)
        comm.recv(1, tag=9)   # token: both acks are already in the pipe
        comm.send(np.full(small, 3.0), 1, tag=3)
        comm.send(np.full(large, 4.0), 1, tag=4)
        comm.recv(1, tag=9)
        return comm.transport_counters()["segments_created"]
    for tag in (1, 2):
        comm.recv(0, tag=tag)
    comm.send(0, 0, tag=9)
    for tag in (3, 4):
        comm.recv(0, tag=tag)
    comm.send(0, 0, tag=9)
    return None


def _irecv_into_paths(comm):
    """irecv_into on both completion paths (posted-first and held)."""
    peer = 1 - comm.rank
    staged = np.full((48, 48), float(comm.rank + 1))   # >= INLINE_MAX
    inline = np.arange(4, dtype=float) + comm.rank
    out_staged = np.zeros((48, 48))
    out_inline = np.zeros(4)
    # posted path: receive announced before the payload arrives
    req1 = comm.irecv_into(out_staged, peer, tag=11)
    comm.send(staged, peer, tag=11)
    comm.send(inline, peer, tag=12)
    got1 = req1.wait()
    comm.barrier()   # by now tag-12 sits in the held list
    req2 = comm.irecv_into(out_inline, peer, tag=12)
    got2 = req2.wait()
    return (got1 is out_staged, got2 is out_inline,
            float(out_staged[0, 0]), float(out_inline[0]))


def _irecv_into_shape_mismatch(comm):
    peer = 1 - comm.rank
    if comm.rank == 0:
        comm.send(np.zeros((4, 4)), peer, tag=1)
        comm.recv(peer, tag=2)
        return True
    out = np.zeros((2, 8))
    req = comm.irecv_into(out, peer, tag=1)
    with pytest.raises(ValueError, match="shape mismatch"):
        req.wait()
    comm.send(0, peer, tag=2)
    return True


class _Unpicklable(Exception):
    def __init__(self):
        super().__init__("cannot cross process boundary")
        self.payload = lambda: None  # lambdas do not pickle


def _raise_unpicklable(comm):
    if comm.rank == 1:
        raise _Unpicklable()
    comm.barrier()


def _stats_probe(comm):
    if comm.rank == 0:
        comm.send(np.arange(8.0), 1, tag=2)
        comm.send(np.arange(int(INLINE_MAX), dtype=float), 1, tag=2)
        return comm.stats.sends, comm.stats.bytes_sent
    comm.recv(0, tag=2)
    comm.recv(0, tag=2)
    return comm.stats.recvs


class TestProcessBackendBasics:
    def test_ranks_run_in_distinct_processes(self):
        out = run_spmd(3, _rank_id, backend="process")
        assert [(r, s) for r, s, _ in out] == [(0, 3), (1, 3), (2, 3)]
        pids = {pid for _, _, pid in out}
        assert len(pids) == 3
        assert PARENT_PID not in pids

    def test_ring_exchange(self):
        out = run_spmd(4, _ring, backend="process")
        assert out == [3.0, 0.0, 1.0, 2.0]

    def test_large_array_via_shared_memory(self):
        out = run_spmd(2, _large_roundtrip, 1 << 20, backend="process")
        shape, first, last, dtype = out[1]
        n = (1 << 20) // 8
        assert shape == (n,)
        assert (first, last) == (0.0, float(n - 1))
        assert dtype == "<f8"

    def test_send_snapshots_payload(self):
        out = run_spmd(2, _snapshot_semantics, backend="process")
        assert out[1] == 5.0  # not the post-send -1.0

    def test_collectives_match_thread_backend(self):
        for backend in ("thread", "process"):
            out = run_spmd(4, _collectives, backend=backend)
            for rank, (total, gathered, big_last, parts) in enumerate(out):
                assert total == 6
                assert gathered == ([0, 10, 20, 30] if rank == 0 else None)
                assert big_last == 4095.0
                assert parts == [0.0, 1.0, 2.0, 3.0]

    def test_wildcard_matching(self):
        out = run_spmd(3, _wildcards, backend="process")
        assert out[0] == [100, 200]

    def test_self_send(self):
        out = run_spmd(2, _self_send, backend="process")
        assert out == [3.0, 3.0]

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMMPI_BACKEND", "process")
        out = run_spmd(2, _rank_id)
        assert all(pid != PARENT_PID for _, _, pid in out)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simmpi backend"):
            run_spmd(2, _rank_id, backend="fibers")


class TestBoundedChannels:
    def test_posted_receives_make_symmetric_bursts_safe(self):
        out = run_spmd(2, _rendezvous, backend="process")
        n_msgs = CHANNEL_SLOTS + 2
        assert out[0] == [1000.0 + i for i in range(n_msgs)]
        assert out[1] == [float(i) for i in range(n_msgs)]

    def test_sendrecv_cycle_with_large_payloads(self):
        out = run_spmd(2, _sendrecv_cycle, backend="process")
        assert out == [1.0, 0.0]


class TestFailurePropagation:
    def test_exception_carries_rank(self):
        with pytest.raises(ValueError, match="rank 2 exploded") as info:
            run_spmd(3, _boom, backend="process")
        assert info.value.simmpi_rank == 2

    def test_unpicklable_exception_is_wrapped(self):
        with pytest.raises(RuntimeError, match="_Unpicklable") as info:
            run_spmd(2, _raise_unpicklable, backend="process")
        assert info.value.simmpi_rank == 1
        assert not isinstance(info.value, RemoteError)


class TestSharedMemoryIntegration:
    def test_field_allocator_places_buffers_in_shared_memory(self):
        out = run_spmd(2, _field_in_shared_memory, backend="process")
        for rank, (n_segments, value, shape) in enumerate(out):
            assert n_segments == 2  # src + dst
            assert value == rank + 0.5
            assert shape == (3, 6, 7)  # ghosted

    def test_thread_backend_has_no_special_allocator(self):
        out = run_spmd(2, lambda comm: comm.field_allocator())
        assert out == [None, None]

    def test_comm_stats_accounted_per_rank(self):
        out = run_spmd(2, _stats_probe, backend="process")
        sends, nbytes = out[0]
        assert sends == 2
        assert nbytes == 8 * 8 + int(INLINE_MAX) * 8
        assert out[1] == 2


class TestStagingAndCompletion:
    def test_best_fit_freelist_reuses_both_segments(self):
        """Regression for first-fit staging: with [large, small] free, a
        small send must claim the small segment so the following large
        send can reuse the large one — exactly two segments ever created
        (first-fit needed three)."""
        out = run_spmd(2, _best_fit_freelist, backend="process")
        assert out[0] == 2

    def test_irecv_into_fills_caller_buffer_on_both_paths(self):
        out = run_spmd(2, _irecv_into_paths, backend="process")
        for rank, (same1, same2, staged_val, inline_val) in enumerate(out):
            assert same1 and same2  # wait() returns the caller's array
            assert staged_val == float((1 - rank) + 1)
            assert inline_val == float(1 - rank)

    def test_irecv_into_shape_mismatch_raises(self):
        out = run_spmd(2, _irecv_into_shape_mismatch, backend="process")
        assert out == [True, True]
