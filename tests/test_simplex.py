"""Property tests of the Gibbs-simplex projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simplex import in_simplex, project_simplex, project_simplex_field

vec4 = st.lists(st.floats(-3, 3), min_size=4, max_size=4)


class TestSingleVector:
    def test_identity_on_simplex(self):
        v = np.array([0.2, 0.3, 0.1, 0.4])
        np.testing.assert_allclose(project_simplex(v), v, atol=1e-12)

    def test_vertex_stays(self):
        v = np.array([0.0, 1.0, 0.0, 0.0])
        np.testing.assert_allclose(project_simplex(v), v, atol=1e-12)

    def test_negative_clipped(self):
        v = np.array([1.1, -0.1, 0.0, 0.0])
        p = project_simplex(v)
        assert p.min() >= 0.0
        assert p.sum() == pytest.approx(1.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="1-D"):
            project_simplex(np.zeros((2, 2)))


@settings(max_examples=60, deadline=None)
@given(v=vec4)
def test_projection_lands_on_simplex(v):
    p = project_simplex(np.asarray(v))
    assert p.min() >= -1e-12
    assert p.sum() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(v=vec4)
def test_projection_idempotent(v):
    p = project_simplex(np.asarray(v))
    np.testing.assert_allclose(project_simplex(p), p, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(v=vec4, w=vec4)
def test_projection_is_nearest_point(v, w):
    """No simplex point is closer to v than its projection."""
    v = np.asarray(v)
    p = project_simplex(v)
    q = project_simplex(np.asarray(w))  # arbitrary other simplex point
    assert np.linalg.norm(v - p) <= np.linalg.norm(v - q) + 1e-9


@settings(max_examples=30, deadline=None)
@given(v=vec4)
def test_field_matches_single(v):
    v = np.asarray(v)
    field = np.tile(v.reshape(4, 1, 1), (1, 2, 3))
    out = project_simplex_field(field)
    expected = project_simplex(v)
    for idx in np.ndindex(2, 3):
        np.testing.assert_allclose(out[(slice(None),) + idx], expected, atol=1e-12)


class TestFieldVariant:
    def test_inplace_output(self):
        rng = np.random.default_rng(0)
        f = rng.normal(size=(4, 3, 3))
        out = project_simplex_field(f, out=f)
        assert out is f
        assert in_simplex(f).all()

    def test_mixed_cells(self):
        f = np.stack([
            np.array([[1.5, 0.25]]),
            np.array([[-0.5, 0.25]]),
            np.array([[0.0, 0.25]]),
            np.array([[0.0, 0.25]]),
        ])
        out = project_simplex_field(f)
        assert in_simplex(out).all()
        # already-feasible cell untouched
        np.testing.assert_allclose(out[:, 0, 1], 0.25)


class TestInSimplex:
    def test_accepts_interior(self):
        assert in_simplex(np.array([0.5, 0.5]).reshape(2, 1))[0]

    def test_rejects_negative(self):
        assert not in_simplex(np.array([1.2, -0.2]).reshape(2, 1))[0]

    def test_rejects_bad_sum(self):
        assert not in_simplex(np.array([0.7, 0.7]).reshape(2, 1))[0]
