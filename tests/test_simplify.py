"""Tests of the quadric-error edge-collapse simplification."""

import numpy as np
import pytest

from repro.io.marching_cubes import extract_isosurface
from repro.io.simplify import simplify_mesh


@pytest.fixture(scope="module")
def sphere_mesh():
    n = 20
    x, y, z = np.meshgrid(*[np.arange(n, dtype=float)] * 3, indexing="ij")
    r = np.sqrt((x - n / 2) ** 2 + (y - n / 2) ** 2 + (z - n / 2) ** 2)
    return extract_isosurface(1.0 / (1.0 + np.exp(r - 6.0)), 0.5)


class TestBudget:
    def test_reaches_target_ratio(self, sphere_mesh):
        s = simplify_mesh(sphere_mesh, target_ratio=0.4)
        assert s.n_faces <= int(0.4 * sphere_mesh.n_faces) * 1.05 + 2

    def test_target_faces(self, sphere_mesh):
        s = simplify_mesh(sphere_mesh, target_faces=300)
        assert s.n_faces <= 310

    def test_both_targets_rejected(self, sphere_mesh):
        with pytest.raises(ValueError, match="either"):
            simplify_mesh(sphere_mesh, target_faces=10, target_ratio=0.5)

    def test_noop_below_target(self, sphere_mesh):
        s = simplify_mesh(sphere_mesh, target_faces=10 * sphere_mesh.n_faces)
        assert s.n_faces == sphere_mesh.n_faces

    def test_max_error_stops_early(self, sphere_mesh):
        s = simplify_mesh(sphere_mesh, target_faces=4, max_error=1e-12)
        # error bound prevents collapsing down to 4 faces
        assert s.n_faces > 4


class TestQuality:
    def test_watertightness_preserved(self, sphere_mesh):
        s = simplify_mesh(sphere_mesh, target_ratio=0.3)
        assert s.is_watertight()
        assert s.euler_characteristic() == 2

    def test_area_approximately_preserved(self, sphere_mesh):
        s = simplify_mesh(sphere_mesh, target_ratio=0.3)
        assert s.area() == pytest.approx(sphere_mesh.area(), rel=0.03)

    def test_geometry_stays_near_sphere(self, sphere_mesh):
        s = simplify_mesh(sphere_mesh, target_ratio=0.3)
        r = np.linalg.norm(s.vertices - 10.0, axis=1)
        assert abs(r.mean() - 6.0) < 0.5


class TestProtection:
    def test_protected_vertices_unmoved(self, sphere_mesh):
        protected = np.arange(0, sphere_mesh.n_vertices, 10)
        coords_before = sphere_mesh.vertices[protected].copy()
        s = simplify_mesh(
            sphere_mesh, target_ratio=0.4, protected_vertices=protected
        )
        # every protected coordinate still exists among output vertices
        out = {tuple(np.round(v, 9)) for v in s.vertices}
        for c in coords_before:
            assert tuple(np.round(c, 9)) in out

    def test_open_boundary_shape_preserved(self):
        """A flat open sheet keeps its outline (boundary quadrics)."""
        n = 12
        v = []
        f = []
        for i in range(n):
            for j in range(n):
                v.append([i, j, 0.0])
        for i in range(n - 1):
            for j in range(n - 1):
                a = i * n + j
                f.append([a, a + 1, a + n])
                f.append([a + 1, a + n + 1, a + n])
        from repro.io.mesh import TriangleMesh

        sheet = TriangleMesh(np.array(v, dtype=float), np.array(f))
        s = simplify_mesh(sheet, target_ratio=0.2)
        assert s.n_faces < sheet.n_faces
        # the sheet outline (bounding square) must survive
        assert s.vertices[:, 0].min() == pytest.approx(0.0, abs=1e-6)
        assert s.vertices[:, 0].max() == pytest.approx(n - 1, abs=1e-6)
        assert np.abs(s.vertices[:, 2]).max() < 1e-6
