"""Integration tests of the single-block simulation driver."""

import numpy as np
import pytest

from repro.core.moving_window import MovingWindow
from repro.core.solver import Simulation
from repro.core.temperature import FrozenTemperature
from repro.thermo.system import TernaryEutecticSystem


@pytest.fixture(scope="module")
def system():
    return TernaryEutecticSystem()


class TestSetup:
    def test_default_state_is_liquid(self, system):
        sim = Simulation(shape=(4, 4, 8), system=system)
        np.testing.assert_allclose(
            sim.phi.interior_src[system.liquid_index], 1.0
        )

    def test_shape_param_mismatch(self, system):
        from repro.core.parameters import PhaseFieldParameters

        p2 = PhaseFieldParameters.for_system(system, dim=2)
        with pytest.raises(ValueError, match="dim"):
            Simulation(shape=(4, 4, 8), system=system, params=p2)

    def test_voronoi_initialization(self, system):
        sim = Simulation(shape=(8, 8, 16), system=system)
        sim.initialize_voronoi(seed=1)
        fr = sim.phase_fractions()
        assert fr[system.liquid_index] < 1.0
        assert fr.sum() == pytest.approx(1.0, abs=1e-9)


class TestStepping:
    @pytest.mark.parametrize("kernel", ["basic", "buffered", "shortcut"])
    def test_kernels_agree_over_multiple_steps(self, system, kernel):
        ref = Simulation(shape=(5, 5, 12), system=system, kernel="basic")
        ref.initialize_voronoi(seed=2, n_seeds=4)
        other = Simulation(
            shape=(5, 5, 12), system=system, kernel=kernel,
            params=ref.params, temperature=ref.temperature,
        )
        other.initialize_voronoi(seed=2, n_seeds=4)
        ref.step(6)
        other.step(6)
        np.testing.assert_allclose(
            other.phi.interior_src, ref.phi.interior_src, atol=1e-9
        )
        np.testing.assert_allclose(
            other.mu.interior_src, ref.mu.interior_src, atol=1e-9
        )

    def test_front_advances_under_undercooling(self, system):
        """Directional solidification: the solid grows towards the melt."""
        nz = 24
        temp = FrozenTemperature(
            t_ref=system.t_eutectic, gradient=0.4, velocity=0.05,
            z0=14.0, dx=1.0,
        )
        sim = Simulation(
            shape=(6, 6, nz), system=system, kernel="shortcut",
            temperature=temp,
        )
        sim.initialize_voronoi(seed=4, solid_height=6, n_seeds=4)
        f0 = sim.front_position()
        sim.step(150)
        f1 = sim.front_position()
        assert f1 > f0 + 0.5

    def test_time_and_counters(self, system):
        sim = Simulation(shape=(4, 4, 8), system=system)
        sim.step(3)
        assert sim.step_count == 3
        assert sim.time == pytest.approx(3 * sim.params.dt)

    def test_report(self, system):
        sim = Simulation(shape=(4, 4, 8), system=system)
        sim.initialize_voronoi(seed=0, n_seeds=3)
        rep = sim.run(2)
        assert rep.steps == 2
        assert rep.phase_fractions.shape == (4,)
        assert rep.solute_mass.shape == (2,)

    def test_callback_invoked(self, system):
        sim = Simulation(shape=(4, 4, 8), system=system)
        calls = []
        sim.run(4, callback=lambda s: calls.append(s.step_count), callback_every=2)
        assert calls == [2, 4]

    def test_2d_simulation_runs(self, system):
        sim = Simulation(shape=(10, 20), system=system, kernel="buffered")
        sim.initialize_voronoi(seed=1, solid_height=6, n_seeds=4)
        m0 = sim.solute_mass()
        sim.step(10)
        # default top BC is Dirichlet for mu; mass need not be conserved,
        # but the state must remain finite and on the simplex
        assert np.isfinite(sim.mu.src).all()
        np.testing.assert_allclose(
            sim.phi.interior_src.sum(axis=0), 1.0, atol=1e-9
        )
        assert m0.shape == (2,)


class TestMovingWindowIntegration:
    def test_window_shifts_and_tracks_front(self, system):
        temp = FrozenTemperature(
            t_ref=system.t_eutectic, gradient=0.4, velocity=0.1,
            z0=8.0, dx=1.0,
        )
        mw = MovingWindow(target_fraction=0.3, check_every=5)
        sim = Simulation(
            shape=(5, 5, 20), system=system, kernel="shortcut",
            temperature=temp, moving_window=mw,
        )
        sim.initialize_voronoi(seed=1, solid_height=10, n_seeds=4)
        sim.step(30)
        assert mw.total_shift > 0
        assert sim.z_offset == mw.total_shift
        # front stays near the target after shifting
        assert sim.front_position() <= 0.3 * 20 + 2

    def test_window_preserves_simplex(self, system):
        mw = MovingWindow(target_fraction=0.25, check_every=2)
        sim = Simulation(
            shape=(4, 4, 16), system=system, kernel="buffered",
            moving_window=mw,
        )
        sim.initialize_voronoi(seed=3, solid_height=8, n_seeds=3)
        sim.step(20)
        np.testing.assert_allclose(
            sim.phi.interior_src.sum(axis=0), 1.0, atol=1e-9
        )
