"""Property-based tests of the stencil layer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import stencils as stc
from repro.core.scenarios import fill_ghosts_periodic

fields = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(5, 9), st.integers(5, 9)),
    elements=st.floats(-5, 5, allow_nan=False),
)


def periodic_ghosted(arr: np.ndarray) -> np.ndarray:
    g = np.zeros(tuple(s + 2 for s in arr.shape))
    g[tuple(slice(1, -1) for _ in arr.shape)] = arr
    fill_ghosts_periodic(g, arr.ndim)
    return g


@settings(max_examples=25, deadline=None)
@given(f=fields)
def test_periodic_gradient_sums_to_zero(f):
    """Central differences telescope: the periodic sum of grad is 0."""
    g = periodic_ghosted(f)
    grad = stc.grad(g, 2, dx=1.0)
    np.testing.assert_allclose(grad.sum(axis=(1, 2)), 0.0, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(f=fields)
def test_periodic_laplacian_sums_to_zero(f):
    g = periodic_ghosted(f)
    lap = stc.laplacian(g, 2, dx=1.0)
    assert abs(lap.sum()) < 1e-8


@settings(max_examples=25, deadline=None)
@given(f=fields)
def test_laplacian_equals_div_of_face_gradients(f):
    """div(face_diff) is the 5-point Laplacian — the identity connecting
    the buffered flux form to the direct stencil."""
    g = periodic_ghosted(f)
    fluxes = [stc.face_diff(g, 2, k, 1.0) for k in range(2)]
    div = stc.div_faces(fluxes, 2, 1.0)
    lap = stc.laplacian(g, 2, 1.0)
    np.testing.assert_allclose(div, lap, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(f=fields)
def test_face_avg_bounded_by_extremes(f):
    g = periodic_ghosted(f)
    for k in range(2):
        avg = stc.face_avg(g, 2, k)
        assert avg.max() <= g.max() + 1e-12
        assert avg.min() >= g.min() - 1e-12


@settings(max_examples=20, deadline=None)
@given(f=fields, s=st.integers(-1, 1))
def test_shifted_consistent_with_roll(f, s):
    g = periodic_ghosted(f)
    out = stc.shifted(g, 2, 0, s)
    expected = np.roll(f, -s, axis=0)
    np.testing.assert_allclose(out, expected)


@settings(max_examples=15, deadline=None)
@given(f=fields)
def test_face_grad_constant_field_is_zero(f):
    g = periodic_ghosted(np.full_like(f, 3.7))
    for k in range(2):
        fg = stc.face_grad(g, 2, k, 1.0)
        np.testing.assert_allclose(fg, 0.0, atol=1e-12)
