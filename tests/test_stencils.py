"""Unit tests of the finite-difference stencil primitives."""

import numpy as np
import pytest

from repro.core import stencils as stc


def linear_field(shape, coeffs, const=1.0):
    """a + sum_k c_k x_k on a ghosted grid (ghost width 1)."""
    grids = np.meshgrid(
        *[np.arange(-1, s + 1, dtype=float) for s in shape], indexing="ij"
    )
    out = np.full(tuple(s + 2 for s in shape), const)
    for g, c in zip(grids, coeffs):
        out += c * g
    return out


class TestInterior:
    def test_strips_ghosts(self):
        a = np.zeros((3, 6, 7, 8))
        assert stc.interior(a, 3).shape == (3, 4, 5, 6)

    def test_view_not_copy(self):
        a = np.zeros((4, 4))
        stc.interior(a, 2)[...] = 5.0
        assert a[1, 1] == 5.0


class TestShifted:
    def test_shift_matches_roll(self):
        a = np.arange(5 * 6, dtype=float).reshape(5, 6)
        plus = stc.shifted(a, 2, 0, +1)
        np.testing.assert_allclose(plus, a[2:5, 1:-1])

    def test_shift_beyond_ghost_raises(self):
        with pytest.raises(ValueError, match="ghost"):
            stc.shifted(np.zeros((4, 4)), 2, 0, 2)


class TestGrad:
    def test_exact_on_linear_3d(self):
        shape = (4, 5, 6)
        coeffs = (2.0, -1.0, 0.5)
        f = linear_field(shape, coeffs)
        g = stc.grad(f, 3, dx=1.0)
        assert g.shape == (3,) + shape
        for k in range(3):
            np.testing.assert_allclose(g[k], coeffs[k], atol=1e-12)

    def test_exact_on_linear_2d(self):
        f = linear_field((5, 7), (3.0, -2.0))
        g = stc.grad(f, 2, dx=0.5)
        np.testing.assert_allclose(g[0], 6.0, atol=1e-12)
        np.testing.assert_allclose(g[1], -4.0, atol=1e-12)

    def test_component_axes_pass_through(self):
        f = np.stack([linear_field((4, 4), (1.0, 0.0)),
                      linear_field((4, 4), (0.0, 2.0))])
        g = stc.grad(f, 2, dx=1.0)
        assert g.shape == (2, 2, 4, 4)
        np.testing.assert_allclose(g[0, 0], 1.0)
        np.testing.assert_allclose(g[1, 1], 2.0)


class TestLaplacian:
    def test_zero_on_linear(self):
        f = linear_field((5, 5, 5), (1.0, 2.0, 3.0))
        np.testing.assert_allclose(stc.laplacian(f, 3, 1.0), 0.0, atol=1e-10)

    def test_quadratic(self):
        shape = (6, 6)
        grids = np.meshgrid(
            *[np.arange(-1, s + 1, dtype=float) for s in shape], indexing="ij"
        )
        f = grids[0] ** 2 + 2.0 * grids[1] ** 2
        np.testing.assert_allclose(stc.laplacian(f, 2, 1.0), 6.0, atol=1e-10)


class TestFaces:
    def test_face_diff_shape_and_value(self):
        f = linear_field((4, 5, 6), (1.0, 0.0, 0.0))
        d = stc.face_diff(f, 3, 0, dx=1.0)
        assert d.shape == (5, 5, 6)
        np.testing.assert_allclose(d, 1.0, atol=1e-12)

    def test_face_avg_on_linear(self):
        f = linear_field((4, 4), (2.0, 0.0), const=0.0)
        a = stc.face_avg(f, 2, 0)
        # faces sit at half-integer positions -0.5 .. 3.5
        expected = 2.0 * (np.arange(5) - 0.5)
        np.testing.assert_allclose(a[:, 0], expected, atol=1e-12)

    def test_face_tangential_grad(self):
        f = linear_field((5, 6), (0.0, 3.0))
        t = stc.face_tangential_grad(f, 2, 0, 1, dx=1.0)
        assert t.shape == (6, 6)
        np.testing.assert_allclose(t, 3.0, atol=1e-12)

    def test_face_tangential_same_axis_raises(self):
        with pytest.raises(ValueError, match="differ"):
            stc.face_tangential_grad(np.zeros((4, 4)), 2, 0, 0, 1.0)

    def test_face_grad_components(self):
        f = linear_field((5, 5, 5), (1.0, 2.0, 3.0))
        g = stc.face_grad(f, 3, 1, dx=1.0)
        assert g.shape == (3, 5, 6, 5)
        np.testing.assert_allclose(g[0], 1.0, atol=1e-12)
        np.testing.assert_allclose(g[1], 2.0, atol=1e-12)
        np.testing.assert_allclose(g[2], 3.0, atol=1e-12)


class TestDivFaces:
    def test_constant_flux_has_zero_divergence(self):
        shape = (4, 5, 6)
        fluxes = []
        for k in range(3):
            fshape = list(shape)
            fshape[k] += 1
            fluxes.append(np.ones(fshape))
        np.testing.assert_allclose(stc.div_faces(fluxes, 3, 1.0), 0.0)

    def test_linear_flux(self):
        shape = (4, 4)
        fx = np.arange(5, dtype=float).reshape(5, 1) * np.ones((5, 4))
        fy = np.zeros((4, 5))
        div = stc.div_faces([fx, fy], 2, 1.0)
        np.testing.assert_allclose(div, 1.0)

    def test_wrong_count_raises(self):
        with pytest.raises(ValueError, match="flux"):
            stc.div_faces([np.zeros((3, 3))], 2, 1.0)

    def test_divergence_theorem(self):
        """Sum of interior divergence equals net boundary flux."""
        rng = np.random.default_rng(7)
        shape = (5, 6)
        fx = rng.normal(size=(6, 6))
        fy = rng.normal(size=(5, 7))
        div = stc.div_faces([fx, fy], 2, 1.0)
        net = (fx[-1].sum() - fx[0].sum()) + (fy[:, -1].sum() - fy[:, 0].sum())
        assert div.sum() == pytest.approx(net, rel=1e-10)
