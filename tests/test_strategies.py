"""Equivalence of the Fig. 5 vectorization strategies."""

import numpy as np
import pytest

from repro.core.kernels import get_phi_kernel, make_context
from repro.core.kernels.strategies import STRATEGIES
from repro.core.scenarios import SCENARIOS, make_scenario


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_matches_buffered(scenario, strategy):
    phi, mu, tg, system, params = make_scenario(scenario, (5, 5, 11), seed=3)
    ctx = make_context(system, params)
    ref = get_phi_kernel("buffered")(ctx, phi, mu, tg)
    out = get_phi_kernel(strategy)(ctx, phi, mu, tg)
    np.testing.assert_allclose(out, ref, atol=1e-12)


def test_four_cells_handles_ragged_chunks():
    """nz not divisible by the chunk size must still work."""
    phi, mu, tg, system, params = make_scenario("interface", (4, 4, 10), seed=1)
    ctx = make_context(system, params)
    ref = get_phi_kernel("buffered")(ctx, phi, mu, tg)
    out = get_phi_kernel("four_cells")(ctx, phi, mu, tg)
    np.testing.assert_allclose(out, ref, atol=1e-12)
