"""Structured event log: schema, per-rank files, merge, log capture."""

import json
import logging

import pytest

from repro.simmpi.runtime import run_spmd
from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    attach_log_events,
    merge_event_logs,
    read_events,
    validate_event,
)
from repro.telemetry.logsetup import current_rank, rank_formatter


class TestSchema:
    def test_emit_matches_schema(self):
        log = EventLog(rank=3)
        rec = log.emit("checkpoint", step=7, path="/tmp/x.npz")
        validate_event(rec)
        assert rec["v"] == EVENT_SCHEMA_VERSION
        assert rec["rank"] == 3
        assert rec["kind"] == "checkpoint"
        assert rec["data"] == {"step": 7, "path": "/tmp/x.npz"}

    def test_level_positional_keeps_data_key_free(self):
        # "level" is positional-only on emit, so a payload may carry its
        # own "level" entry
        log = EventLog()
        rec = log.emit("log", "WARNING", level="noise-floor")
        assert rec["level"] == "WARNING"
        assert rec["data"]["level"] == "noise-floor"

    def test_validate_rejects_bad_records(self):
        with pytest.raises(ValueError, match="lacks keys"):
            validate_event({"v": 1, "kind": "x"})
        good = EventLog().emit("x", a=1)
        bad = dict(good, v=99)
        with pytest.raises(ValueError, match="version"):
            validate_event(bad)
        with pytest.raises(ValueError, match="kind"):
            validate_event(dict(good, kind=""))
        with pytest.raises(ValueError, match="data"):
            validate_event(dict(good, data=[1]))

    def test_seq_monotonic_and_count(self):
        log = EventLog()
        for i in range(5):
            log.emit("tick", i=i)
        log.emit("tock")
        assert [r["seq"] for r in log.records] == list(range(6))
        assert log.count() == 6
        assert log.count("tick") == 5


class TestFilesAndMerge:
    def test_round_trip(self, tmp_path):
        with EventLog(tmp_path, rank=0) as log:
            log.emit("run_start", steps=10)
            log.emit("guard_trip", "ERROR", violations=["nan"])
        records = read_events(tmp_path / "events-rank0000.jsonl")
        assert [r["kind"] for r in records] == ["run_start", "guard_trip"]
        assert records[1]["level"] == "ERROR"
        assert records == log.records

    def test_append_across_instances(self, tmp_path):
        # campaign chunks reopen the same per-rank file
        with EventLog(tmp_path, rank=0) as log:
            log.emit("chunk", n=1)
        with EventLog(tmp_path, rank=0) as log:
            log.emit("chunk", n=2)
        records = read_events(tmp_path / "events-rank0000.jsonl")
        assert [r["data"]["n"] for r in records] == [1, 2]

    def test_merge_orders_by_time(self, tmp_path):
        import time

        logs = [EventLog(tmp_path, rank=r) for r in range(3)]
        for i in range(4):
            logs[i % 3].emit("tick", i=i)
            time.sleep(0.002)  # guarantee distinct timestamps
        for log in logs:
            log.close()
        merged = merge_event_logs(tmp_path)
        assert [r["data"]["i"] for r in merged] == [0, 1, 2, 3]
        on_disk = [
            json.loads(line)
            for line in (tmp_path / "events-merged.jsonl").read_text().splitlines()
        ]
        assert on_disk == merged

    def test_rank_detected_from_spmd_thread(self, tmp_path):
        def rank_main(comm):
            assert current_rank() == comm.rank
            with EventLog(tmp_path) as log:  # rank auto-detected
                log.emit("hello")
                return log.rank

        ranks = run_spmd(3, rank_main)
        assert ranks == [0, 1, 2]
        merged = merge_event_logs(tmp_path)
        assert sorted(r["rank"] for r in merged) == [0, 1, 2]


class TestLogCapture:
    def test_logging_records_become_events(self):
        log = EventLog()
        handler = attach_log_events(log, logger="repro.test_capture")
        try:
            logging.getLogger("repro.test_capture.sub").warning(
                "disk %s is full", "/scratch"
            )
        finally:
            logging.getLogger("repro.test_capture").removeHandler(handler)
        assert log.count("log") == 1
        rec = log.records[0]
        assert rec["level"] == "WARNING"
        assert rec["data"]["logger"] == "repro.test_capture.sub"
        assert rec["data"]["message"] == "disk /scratch is full"
        assert rec["data"]["origin_rank"] == 0

    def test_formatter_carries_rank_tag(self):
        fmt = rank_formatter()
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "hi", (), None
        )
        record.rank = 5
        assert "[rank 5]" in fmt.format(record)
