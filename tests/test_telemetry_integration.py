"""End-to-end telemetry: timeloop agreement, counters, runs, campaigns."""

import json
import time

import numpy as np
import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.distributed import DistributedSimulation
from repro.grid.timeloop import Timeloop
from repro.resilience.campaign import run_campaign
from repro.resilience.faults import Fault, FaultPlan
from repro.resilience.guards import GuardedSimulation
from repro.resilience.store import CheckpointStore
from repro.telemetry import (
    EventLog,
    Heartbeat,
    MetricsRegistry,
    RunTelemetry,
    TimingTree,
    attach_heartbeat,
    read_events,
)
from repro.telemetry.report import validate_run_report
from repro.thermo.system import TernaryEutecticSystem

SHAPE = (8, 8, 12)


@pytest.fixture(scope="module")
def initial_state():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(
        system, SHAPE, solid_height=4, n_seeds=4
    )
    return system, smooth_phase_field(phi0, 2), mu0


class TestTimeloopTreeAgreement:
    def test_tree_matches_functor_accumulators_exactly(self):
        # the timeloop measures each functor once and records the same
        # value into the tree, so the two views agree exactly — not just
        # within timer resolution
        tree = TimingTree()
        loop = Timeloop(tree=tree)
        f1 = loop.add("sweep", lambda: time.sleep(0.001))
        f2 = loop.add("halo", lambda: None, category="comm")
        loop.run(4)
        assert tree.node("timeloop/sweep").stats.total == f1.seconds
        assert tree.node("timeloop/halo").stats.total == f2.seconds
        assert tree.node("timeloop/sweep").stats.count == f1.calls == 4
        report = loop.timing_report()
        assert report["functors"]["sweep"]["total"] == f1.seconds
        assert report["functors"]["halo"]["category"] == "comm"
        assert report["steps"] == 4

    def test_timing_report_fields(self):
        loop = Timeloop()
        loop.add("a", lambda: None)
        loop.run(3)
        row = loop.timing_report()["functors"]["a"]
        assert set(row) >= {"category", "calls", "total", "avg", "min", "max"}
        assert row["calls"] == 3
        assert row["min"] <= row["avg"] <= row["max"]
        assert row["seconds"] == row["total"]  # deprecated alias


class TestCountersAndHeartbeat:
    def test_heartbeat_advances_counters_and_emits(self):
        registry = MetricsRegistry()
        events = EventLog()
        hb = Heartbeat(registry, cells_per_step=100, every=2, events=events)
        for _ in range(4):
            hb.sample()
        snap = registry.snapshot()
        assert snap["cells_updated"] == 400
        assert snap["mlups"] > 0 and snap["mlups_window"] > 0
        assert events.count("heartbeat") == 2  # every 2nd tick

    def test_attach_heartbeat_runs_in_timeloop(self):
        loop = Timeloop()
        registry = MetricsRegistry()
        attach_heartbeat(loop, registry, cells_per_step=10)
        loop.run(5)
        assert registry.counter("cells_updated").value == 50
        report = loop.timing_report()
        assert report["functors"]["heartbeat"]["category"] == "telemetry"

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").add(-1)

    def test_rolling_rate_zero_width_windows(self):
        """Degenerate windows read 0.0 instead of dividing by zero.

        Same-tick samples are real occurrences (coarse clocks, injected
        ``now=`` values, a heartbeat firing twice without progress) and
        every snapshot calls ``mlups_window``.
        """
        from repro.telemetry.counters import RollingRate

        rate = RollingRate()
        assert rate.mlups() == 0.0          # empty window
        rate.sample(100, now=1.0)
        assert rate.mlups() == 0.0          # single sample
        rate.sample(200, now=1.0)
        assert rate.mlups() == 0.0          # zero-width pair
        rate.sample(300, now=1.0)
        assert rate.mlups() == 0.0          # still zero-width
        rate.sample(400, now=2.0)
        # earliest sample strictly before the newest anchors the rate
        assert rate.mlups() == pytest.approx((400 - 100) / 1.0 / 1e6)
        # trailing same-tick duplicates of the newest stamp still work
        rate.sample(500, now=2.0)
        assert rate.mlups() == pytest.approx((500 - 100) / 1.0 / 1e6)

    def test_snapshot_survives_zero_width_window(self):
        registry = MetricsRegistry()
        registry.rate.sample(10, now=5.0)
        registry.rate.sample(20, now=5.0)
        assert registry.snapshot()["mlups_window"] == 0.0


class TestDistributedRunTelemetry:
    def test_two_rank_run_produces_full_telemetry(
        self, tmp_path, initial_state
    ):
        system, phi0, mu0 = initial_state
        steps = 3
        d = DistributedSimulation(SHAPE, (2, 1, 1), system=system,
                                  kernel="buffered")
        res = d.run(
            steps, phi0, mu0, guard=True,
            telemetry=RunTelemetry(directory=tmp_path, run_id="demo"),
        )

        # merged timing tree: both ranks contributed, comm + compute split
        tree = res.timing
        assert tree is not None
        assert {"comm", "compute"} <= set(tree["children"])
        comp = tree["children"]["compute"]
        assert comp["n_ranks"] == 2
        phi_sweeps = comp["children"]["phi"]
        assert phi_sweeps["count"] == steps * 2  # per rank per step
        assert phi_sweeps["total"] > 0
        assert (
            phi_sweeps["rank_min"]
            <= phi_sweeps["rank_avg"]
            <= phi_sweeps["rank_max"]
        )

        # counters summed across ranks
        cells = int(np.prod(SHAPE))
        assert res.counters["cells_updated"] == steps * cells
        assert res.counters["halo_bytes"] > 0
        assert res.counters["halo_messages"] > 0

        # events: per-rank files plus merged stream, parseable + valid
        for rank in (0, 1):
            records = read_events(tmp_path / f"events-rank{rank:04d}.jsonl")
            kinds = [r["kind"] for r in records]
            assert kinds[0] == "run_start" and kinds[-1] == "run_end"
            assert kinds.count("heartbeat") == steps
        merged = [
            json.loads(line)
            for line in (tmp_path / "events-merged.jsonl").read_text().splitlines()
        ]
        assert len(merged) == sum(
            len(read_events(tmp_path / f"events-rank{r:04d}.jsonl"))
            for r in (0, 1)
        )

        # schema-valid run report with nonzero throughput
        validate_run_report(res.report)
        assert res.report["mlups"] > 0
        assert res.report["ranks"] == 2
        assert res.report["steps"] == steps
        assert (tmp_path / "report-demo.json").exists()

    def test_telemetry_off_leaves_result_bare(self, initial_state):
        system, phi0, mu0 = initial_state
        d = DistributedSimulation(SHAPE, (2, 1, 1), system=system,
                                  kernel="buffered")
        res = d.run(2, phi0, mu0)
        assert res.timing is None
        assert res.counters is None
        assert res.report is None

    def test_guard_trip_emits_event(self, tmp_path, initial_state):
        from repro.resilience.errors import InvariantViolation

        system, phi0, mu0 = initial_state
        d = DistributedSimulation(SHAPE, (2, 1, 1), system=system,
                                  kernel="buffered")
        plan = FaultPlan([Fault("nan_inject", step=1, rank=0)])
        with pytest.raises(InvariantViolation):
            d.run(3, phi0, mu0, guard=True, fault_plan=plan,
                  telemetry=RunTelemetry(directory=tmp_path, run_id="trip"))
        records = read_events(tmp_path / "events-rank0000.jsonl")
        kinds = [r["kind"] for r in records]
        assert "fault" in kinds
        assert "guard_trip" in kinds
        trip = next(r for r in records if r["kind"] == "guard_trip")
        assert trip["level"] == "ERROR"
        assert trip["data"]["reason"]


class TestCampaignTelemetry:
    def test_faulted_campaign_reports_restart(self, tmp_path, initial_state):
        system, phi0, mu0 = initial_state
        d = DistributedSimulation(SHAPE, (2, 1, 1), system=system,
                                  kernel="buffered")
        plan = FaultPlan([Fault("rank_kill", step=2, rank=1)])
        res = run_campaign(
            d, 4, phi0, mu0,
            store=CheckpointStore(tmp_path / "ck"),
            checkpoint_every=2,
            fault_plan=plan,
            telemetry=RunTelemetry(directory=tmp_path / "tel", run_id="camp"),
        )
        assert res.steps == 4
        assert res.restarts == 1

        # chunk trees accumulated: still a 2-rank breakdown, with the
        # full campaign's compute calls
        comp = res.timing["children"]["compute"]
        assert comp["n_ranks"] == 2
        assert comp["children"]["phi"]["count"] == 4 * 2

        validate_run_report(res.report)
        assert res.report["guards"]["restarts"] == 1
        assert res.report["faults"]["fired"] == [
            {"kind": "rank_kill", "step": 2, "rank": 1}
        ]
        assert res.report["counters"]["checkpoints_written"] == res.checkpoints_written

        merged = (tmp_path / "tel" / "events-merged.jsonl").read_text()
        kinds = [json.loads(line)["kind"] for line in merged.splitlines()]
        assert "campaign_start" in kinds
        assert "checkpoint" in kinds
        assert "restart" in kinds
        assert "campaign_end" in kinds

    def test_unfaulted_campaign_matches_plain_run(self, tmp_path, initial_state):
        system, phi0, mu0 = initial_state
        d = DistributedSimulation(SHAPE, (2, 1, 1), system=system,
                                  kernel="buffered")
        res = run_campaign(
            d, 4, phi0, mu0,
            store=CheckpointStore(tmp_path / "ck"),
            checkpoint_every=2,
            telemetry=RunTelemetry(directory=tmp_path / "tel", run_id="ok"),
        )
        ref = d.run(4, phi0, mu0)
        np.testing.assert_allclose(res.phi, ref.phi, rtol=0, atol=5e-7)
        assert res.restarts == 0
        assert res.report["guards"]["violations"] == []


class TestGuardedSimulationEvents:
    def test_rollback_emits_events(self, tmp_path):
        from repro.core.solver import Simulation

        sim = Simulation(shape=(6, 6, 10), kernel="buffered")
        sim.initialize_voronoi(seed=5, solid_height=4, n_seeds=4, smooth=2)
        events = EventLog()
        guarded = GuardedSimulation(
            sim,
            CheckpointStore(tmp_path),
            fault_plan=FaultPlan([Fault("nan_inject", step=2)]),
            checkpoint_every=2,
            events=events,
        )
        guarded.run(4)
        assert guarded.rollbacks == 1
        assert events.count("fault") == 1
        assert events.count("guard_trip") == 1
        assert events.count("rollback") == 1
        assert events.count("checkpoint") >= 1
        trip = next(r for r in events.records if r["kind"] == "guard_trip")
        assert trip["data"]["violations"]
