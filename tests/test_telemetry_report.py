"""Run reports: build, validate, persist, determinism."""

import json

import pytest

from repro.telemetry.report import (
    RUN_REPORT_SCHEMA,
    RUN_REPORT_VERSION,
    build_run_report,
    config_hash,
    load_run_report,
    summarize_run_report,
    validate_run_report,
    write_run_report,
)

CONFIG = {"shape": [8, 8, 16], "kernel": "buffered", "n_ranks": 2}


def make_report(**overrides):
    kwargs = dict(
        run_id="t1",
        config=CONFIG,
        grid_shape=(8, 8, 16),
        n_ranks=2,
        steps=5,
        wall_seconds=1.25,
        mlups=0.42,
        created=1_700_000_000.0,
    )
    kwargs.update(overrides)
    return build_run_report(**kwargs)


class TestBuildAndValidate:
    def test_minimal_report_is_valid(self):
        report = make_report()
        validate_run_report(report)
        assert report["version"] == RUN_REPORT_VERSION
        assert report["grid"] == {"shape": [8, 8, 16], "cells": 1024}
        assert report["guards"] == {
            "rollbacks": 0, "restarts": 0, "violations": [],
        }
        assert report["faults"] == {"fired": [], "pending": 0}

    def test_schema_doc_covers_required_keys(self):
        required = set(RUN_REPORT_SCHEMA["required"])
        assert required <= set(make_report())

    def test_config_hash_matches_config(self):
        report = make_report()
        assert report["config_hash"] == config_hash(CONFIG)
        tampered = dict(report, config={**CONFIG, "kernel": "basic"})
        with pytest.raises(ValueError, match="config_hash"):
            validate_run_report(tampered)

    def test_config_hash_key_order_independent(self):
        a = {"x": 1, "y": [1, 2]}
        b = {"y": [1, 2], "x": 1}
        assert config_hash(a) == config_hash(b)
        assert config_hash(a) != config_hash({"x": 2, "y": [1, 2]})

    def test_validate_rejects_missing_and_wrong(self):
        report = make_report()
        broken = {k: v for k, v in report.items() if k != "mlups"}
        with pytest.raises(ValueError):
            validate_run_report(broken)
        with pytest.raises(ValueError):
            validate_run_report(dict(report, schema="something.else"))
        with pytest.raises(ValueError):
            validate_run_report(dict(report, version=RUN_REPORT_VERSION + 1))

    def test_optional_sections(self):
        report = make_report(
            timings={"name": "", "count": 0, "total": 0.0, "call_min": 0.0,
                     "call_max": 0.0, "rank_min": 0.0, "rank_max": 0.0,
                     "rank_avg": 0.0, "n_ranks": 2, "children": {}},
            counters={"cells_updated": 5120},
            guard_stats={"restarts": 2},
            series={"ladder": {"basic": 1.0}},
        )
        validate_run_report(report)
        assert report["guards"]["restarts"] == 2
        assert report["guards"]["rollbacks"] == 0  # defaults survive merge
        assert report["series"]["ladder"]["basic"] == 1.0


class TestPersistence:
    def test_write_load_round_trip(self, tmp_path):
        report = make_report()
        path = tmp_path / "report.json"
        write_run_report(path, report)
        again = load_run_report(path)
        assert again == report

    def test_load_validates(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.run_report"}))
        with pytest.raises(ValueError):
            load_run_report(path)

    def test_deterministic_bytes_under_fixed_created(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_run_report(a, make_report())
        write_run_report(b, make_report())
        assert a.read_bytes() == b.read_bytes()

    def test_cli_validates(self, tmp_path, capsys):
        from repro.telemetry.report import _main

        path = tmp_path / "r.json"
        write_run_report(path, make_report())
        assert _main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "t1" in out

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert _main([str(bad)]) == 1


TRACING = {
    "spans": 40,
    "overlap": {"exchange_seconds": 0.02, "hidden_seconds": 0.015,
                "efficiency": 0.75},
    "imbalance": {"per_rank": {"0": {"seconds": 0.1, "spans": 5},
                               "1": {"seconds": 0.12, "spans": 5}},
                  "max": 0.12, "min": 0.1, "avg": 0.11,
                  "stddev": 0.01, "ratio": 1.09},
}


class TestTracingSection:
    def test_tracing_stats_merge_and_validate(self):
        report = make_report(tracing_stats=TRACING)
        validate_run_report(report)
        tracing = report["tracing"]
        assert tracing["enabled"] is True
        assert tracing["dropped"] == 0  # default survives the merge
        assert tracing["pipe_latency"] is None
        assert tracing["overlap"]["efficiency"] == 0.75

    def test_absent_by_default(self):
        assert "tracing" not in make_report()

    def test_validate_rejects_broken_tracing(self):
        report = make_report(tracing_stats=TRACING)
        for mutate in (
            lambda t: t.update(spans=-1),
            lambda t: t.update(enabled="yes"),
            lambda t: t["overlap"].update(efficiency=1.5),
            lambda t: t["overlap"].pop("hidden_seconds"),
            lambda t: t.update(pipe_latency=[1, 2]),
            lambda t: t["imbalance"].update(ratio=-0.1),
        ):
            broken = json.loads(json.dumps(report))
            mutate(broken["tracing"])
            with pytest.raises(ValueError, match="tracing"):
                validate_run_report(broken)


class TestSummary:
    def _full_report(self):
        return make_report(
            timings={
                "name": "", "count": 0, "total": 0.0, "call_min": 0.0,
                "call_max": 0.0, "rank_min": 0.0, "rank_max": 0.0,
                "rank_avg": 0.0, "n_ranks": 2,
                "children": {
                    "compute": {
                        "name": "compute", "count": 10, "total": 2.0,
                        "call_min": 0.1, "call_max": 0.3,
                        "rank_min": 0.9, "rank_max": 1.1, "rank_avg": 1.0,
                        "n_ranks": 2, "children": {},
                    },
                    "comm": {
                        "name": "comm", "count": 10, "total": 0.5,
                        "call_min": 0.01, "call_max": 0.1,
                        "rank_min": 0.2, "rank_max": 0.3, "rank_avg": 0.25,
                        "n_ranks": 2, "children": {},
                    },
                },
            },
            counters={"cells_updated": 5120, "mlups": 0.42},
            tracing_stats=TRACING,
        )

    def test_summary_lines(self):
        lines = summarize_run_report(self._full_report())
        text = "\n".join(lines)
        assert "run t1" in lines[0] and "ranks 2" in lines[0]
        # scopes sorted by total: compute before comm
        assert text.index("compute") < text.index("comm")
        assert "cells_updated" in text
        assert "overlap efficiency 0.750" in text
        assert "step imbalance 1.09x" in text

    def test_summary_minimal_report(self):
        # no timings/counters/optional sections: header + guards + faults
        lines = summarize_run_report(make_report())
        assert len(lines) == 3
        assert "tracing" not in "\n".join(lines)

    def test_cli_summary_mode(self, tmp_path, capsys):
        from repro.telemetry.report import _main

        path = tmp_path / "r.json"
        write_run_report(path, self._full_report())
        assert _main(["--summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "timing scopes" in out
        assert "overlap efficiency" in out
        assert "ok   " not in out  # summary replaces the ok-line

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert _main(["--summary", str(bad)]) == 1
