"""Timing trees, pools and their cross-rank reduction."""

import time

import pytest

from repro.simmpi.runtime import run_spmd
from repro.telemetry.reduce import (
    accumulate_reduced,
    as_reduced,
    merge_rank_trees,
    merge_reduced,
    reduce_tree_over_ranks,
)
from repro.telemetry.timing import TimerStats, TimingPool, TimingTree


class TestTimerStats:
    def test_record_and_stats(self):
        s = TimerStats()
        for v in (0.1, 0.3, 0.2):
            s.record(v)
        assert s.count == 3
        assert s.total == pytest.approx(0.6)
        assert s.min == pytest.approx(0.1)
        assert s.max == pytest.approx(0.3)
        assert s.avg == pytest.approx(0.2)

    def test_empty_stats(self):
        s = TimerStats()
        assert s.avg == 0.0
        assert s.to_dict()["min"] == 0.0  # inf never leaks into JSON

    def test_merge(self):
        a, b = TimerStats(), TimerStats()
        a.record(1.0)
        b.record(3.0)
        a.merge(b)
        assert a.count == 2 and a.min == 1.0 and a.max == 3.0

    def test_round_trip(self):
        s = TimerStats()
        s.record(0.5)
        s.record(1.5)
        again = TimerStats.from_dict(s.to_dict())
        assert again.count == s.count
        assert again.total == pytest.approx(s.total)
        assert again.min == pytest.approx(s.min)


class TestTimingTree:
    def test_nesting(self):
        tree = TimingTree()
        with tree.scope("step"):
            with tree.scope("phi"):
                pass
            with tree.scope("mu"):
                pass
        assert "step" in tree
        assert "step/phi" in tree and "step/mu" in tree
        assert tree.node("step").stats.count == 1
        # parent covers its children
        children = tree.node("step/phi").stats.total + tree.node(
            "step/mu"
        ).stats.total
        assert tree.node("step").stats.total >= children

    def test_scope_mismatch(self):
        tree = TimingTree()
        tree.start("a")
        with pytest.raises(RuntimeError, match="mismatch"):
            tree.stop("b")
        tree.stop("a")
        with pytest.raises(RuntimeError, match="no timing scope"):
            tree.stop()

    def test_record_resolves_from_root(self):
        tree = TimingTree()
        with tree.scope("outer"):
            tree.record("comm/phi", 0.25)
        # recorded at the root-level path, not under the open scope
        assert "comm/phi" in tree
        assert "outer/comm" not in tree
        assert tree.node("comm/phi").stats.total == pytest.approx(0.25)

    def test_flatten_and_round_trip(self):
        tree = TimingTree()
        tree.record("a/b", 1.0)
        tree.record("a/b", 2.0)
        tree.record("c", 0.5)
        flat = tree.flatten()
        assert set(flat) == {"a", "a/b", "c"}
        assert flat["a/b"].count == 2
        again = TimingTree.from_dict(tree.to_dict())
        assert again.node("a/b").stats.total == pytest.approx(3.0)

    def test_merge_and_reset(self):
        t1, t2 = TimingTree(), TimingTree()
        t1.record("x", 1.0)
        t2.record("x", 2.0)
        t2.record("y", 0.1)
        t1.merge(t2)
        assert t1.node("x").stats.count == 2
        assert "y" in t1
        t1.reset()
        assert "x" not in t1

    def test_time_call(self):
        tree = TimingTree()
        out = tree.time_call("f", lambda a: a + 1, 41)
        assert out == 42
        assert tree.node("f").stats.count == 1


class TestTimingPool:
    def test_context_accumulation(self):
        pool = TimingPool()
        for _ in range(3):
            with pool("io"):
                time.sleep(0.001)
        assert pool["io"].count == 3
        assert pool["io"].total >= 0.003
        assert "io" in pool and len(pool) == 1

    def test_merge(self):
        a, b = TimingPool(), TimingPool()
        with a("x"):
            pass
        with b("x"):
            pass
        a.merge(b)
        assert a["x"].count == 2


class TestReduction:
    def _tree(self, seconds):
        tree = TimingTree()
        tree.record("compute/phi", seconds)
        tree.record("comm", seconds * 2)
        return tree

    def test_as_reduced_shape(self):
        node = as_reduced(self._tree(0.5).to_dict())
        phi = node["children"]["compute"]["children"]["phi"]
        assert phi["n_ranks"] == 1
        assert phi["rank_min"] == phi["rank_max"] == pytest.approx(0.5)
        assert phi["rank_avg"] == pytest.approx(0.5)

    def test_merge_rank_trees(self):
        merged = merge_rank_trees(
            [self._tree(0.2).to_dict(), self._tree(0.6).to_dict()]
        )
        phi = merged["children"]["compute"]["children"]["phi"]
        assert phi["n_ranks"] == 2
        assert phi["rank_min"] == pytest.approx(0.2)
        assert phi["rank_max"] == pytest.approx(0.6)
        assert phi["rank_avg"] == pytest.approx(0.4)
        assert phi["total"] == pytest.approx(0.8)

    def test_merge_reduced_associative(self):
        dicts = [self._tree(s).to_dict() for s in (0.1, 0.2, 0.3, 0.4)]
        left = merge_reduced(
            merge_reduced(as_reduced(dicts[0]), as_reduced(dicts[1])),
            merge_reduced(as_reduced(dicts[2]), as_reduced(dicts[3])),
        )
        seq = merge_rank_trees(dicts)
        phi_l = left["children"]["compute"]["children"]["phi"]
        phi_s = seq["children"]["compute"]["children"]["phi"]
        assert phi_l["n_ranks"] == phi_s["n_ranks"] == 4
        assert phi_l["total"] == pytest.approx(phi_s["total"])
        assert phi_l["rank_avg"] == pytest.approx(phi_s["rank_avg"])

    def test_accumulate_reduced_chunks(self):
        # two campaign chunks of the same 2-rank world: rank count stays
        # 2 while totals add
        c1 = merge_rank_trees([self._tree(0.2).to_dict(),
                               self._tree(0.4).to_dict()])
        c2 = merge_rank_trees([self._tree(0.1).to_dict(),
                               self._tree(0.3).to_dict()])
        acc = accumulate_reduced(c1, c2)
        phi = acc["children"]["compute"]["children"]["phi"]
        assert phi["n_ranks"] == 2
        assert phi["total"] == pytest.approx(1.0)
        assert phi["count"] == 4

    @pytest.mark.parametrize("n_ranks", [2, 3, 4])
    def test_reduce_over_ranks_spmd(self, n_ranks):
        def rank_main(comm):
            tree = TimingTree()
            tree.record("compute", 0.1 * (comm.rank + 1))
            tree.record("comm", 0.01)
            return reduce_tree_over_ranks(comm, tree)

        results = run_spmd(n_ranks, rank_main)
        # the reduction lands on rank 0 only
        assert all(r is None for r in results[1:])
        merged = results[0]
        comp = merged["children"]["compute"]
        assert comp["n_ranks"] == n_ranks
        assert comp["rank_min"] == pytest.approx(0.1)
        assert comp["rank_max"] == pytest.approx(0.1 * n_ranks)
        assert comp["total"] == pytest.approx(
            sum(0.1 * (r + 1) for r in range(n_ranks))
        )

    def test_merge_mismatched_shapes(self):
        """Scopes present on only some ranks merge without loss.

        Real trees disagree across ranks: only the process backend
        records ``comm/pipe/*``, only compiled ranks record ``compile``,
        and a guard scope appears only where a guard fired.  The merge
        must keep every scope, with ``n_ranks`` counting the ranks that
        actually measured it.
        """
        a = TimingTree()
        a.record("compute/phi", 0.2)
        a.record("compile", 1.5)
        b = TimingTree()
        b.record("compute/phi", 0.4)
        b.record("comm/pipe/send", 0.05)
        merged = merge_rank_trees([a.to_dict(), b.to_dict()])
        phi = merged["children"]["compute"]["children"]["phi"]
        assert phi["n_ranks"] == 2
        assert phi["total"] == pytest.approx(0.6)
        compile_ = merged["children"]["compile"]
        assert compile_["n_ranks"] == 1
        assert compile_["rank_min"] == compile_["rank_max"] == pytest.approx(1.5)
        send = merged["children"]["comm"]["children"]["pipe"]["children"]["send"]
        assert send["n_ranks"] == 1
        assert send["total"] == pytest.approx(0.05)

    @pytest.mark.parametrize("n_ranks", [2, 3, 4])
    def test_reduce_over_ranks_mismatched_shapes(self, n_ranks):
        """Cross-rank reduction over genuinely different per-rank trees.

        Every rank records a shared scope plus one scope unique to
        itself (``rank<r>/only``); the pairwise log2(P) reduction must
        deliver all of them to rank 0 with correct per-scope rank
        counts — no KeyError when one side of a pairwise merge lacks a
        child the other has.
        """

        def rank_main(comm):
            tree = TimingTree()
            tree.record("compute", 0.1)
            tree.record(f"rank{comm.rank}/only", 0.01 * (comm.rank + 1))
            if comm.rank % 2:
                tree.record("odd_ranks_only", 0.5)
            return reduce_tree_over_ranks(comm, tree)

        results = run_spmd(n_ranks, rank_main)
        merged = results[0]
        assert merged["children"]["compute"]["n_ranks"] == n_ranks
        for r in range(n_ranks):
            only = merged["children"][f"rank{r}"]["children"]["only"]
            assert only["n_ranks"] == 1
            assert only["total"] == pytest.approx(0.01 * (r + 1))
        odd = merged["children"]["odd_ranks_only"]
        assert odd["n_ranks"] == n_ranks // 2
        assert odd["total"] == pytest.approx(0.5 * (n_ranks // 2))
