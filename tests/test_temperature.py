"""Tests of the frozen-temperature ansatz."""

import numpy as np
import pytest

from repro.core.temperature import ConstantTemperature, FrozenTemperature


@pytest.fixture
def frozen():
    return FrozenTemperature(t_ref=700.0, gradient=0.5, velocity=2.0, z0=10.0, dx=1.0)


class TestFrozenTemperature:
    def test_reference_isotherm_at_t0(self, frozen):
        # cell centre at z0 = 10 -> index 9.5
        assert frozen.at_position(0.0, 9.5) == pytest.approx(700.0)

    def test_gradient_along_z(self, frozen):
        t = frozen.at_time(0.0, 20)
        np.testing.assert_allclose(np.diff(t), 0.5)

    def test_profile_moves_with_velocity(self, frozen):
        t0 = frozen.at_time(0.0, 20)
        t1 = frozen.at_time(1.0, 20)
        np.testing.assert_allclose(t1, t0 - 0.5 * 2.0)

    def test_dT_dt(self, frozen):
        assert frozen.dT_dt == pytest.approx(-1.0)

    def test_z_offset_shifts_frame(self, frozen):
        base = frozen.at_time(0.3, 10, z_offset=0)
        moved = frozen.at_time(0.3, 10, z_offset=5)
        np.testing.assert_allclose(moved[:5], base[5:])

    def test_isotherm_position_advances(self, frozen):
        z0 = frozen.isotherm_position(0.0)
        z1 = frozen.isotherm_position(2.0)
        assert z1 - z0 == pytest.approx(4.0)

    def test_isotherm_position_other_temperature(self, frozen):
        z = frozen.isotherm_position(0.0, temperature=701.0)
        assert z == pytest.approx(10.0 + 1.0 / 0.5)

    def test_window_shift_consistency(self, frozen):
        """Temperature at a fixed physical position is offset-invariant."""
        a = frozen.at_position(1.0, 7, z_offset=3)
        b = frozen.at_position(1.0, 10, z_offset=0)
        assert a == pytest.approx(b)


class TestConstantTemperature:
    def test_profile(self):
        c = ConstantTemperature(650.0)
        np.testing.assert_allclose(c.at_time(5.0, 7), 650.0)
        assert c.at_position(1.0, 3) == 650.0
        assert c.dT_dt == 0.0
