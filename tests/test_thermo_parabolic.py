"""Unit + property tests of the parabolic free-energy algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermo.parabolic import ParabolicFreeEnergy


def make_fe(curv=None, c_eq=(0.2, 0.3), c_slope=(1e-3, -5e-4), latent=0.1, te=700.0):
    curv = np.array([[10.0, 2.0], [2.0, 8.0]]) if curv is None else np.asarray(curv)
    return ParabolicFreeEnergy(
        curvature=curv,
        c_eq=np.asarray(c_eq, dtype=float),
        c_slope=np.asarray(c_slope, dtype=float),
        latent_slope=latent,
        t_eutectic=te,
    )


class TestValidation:
    def test_rejects_non_square_curvature(self):
        with pytest.raises(ValueError, match="square"):
            make_fe(curv=np.ones((2, 3)))

    def test_rejects_asymmetric_curvature(self):
        with pytest.raises(ValueError, match="symmetric"):
            make_fe(curv=np.array([[1.0, 0.5], [0.0, 1.0]]))

    def test_rejects_indefinite_curvature(self):
        with pytest.raises(ValueError, match="positive definite"):
            make_fe(curv=np.array([[1.0, 0.0], [0.0, -1.0]]))

    def test_rejects_wrong_c_eq_shape(self):
        with pytest.raises(ValueError, match="c_eq"):
            make_fe(c_eq=(0.1, 0.2, 0.3))

    def test_rejects_wrong_slope_shape(self):
        with pytest.raises(ValueError, match="c_slope"):
            make_fe(c_slope=(0.1,))


class TestLegendreTransform:
    def test_c_of_mu_inverts_mu_of_c(self):
        fe = make_fe()
        c = np.array([0.25, 0.31])
        mu = fe.mu_of_c(c, 702.0)
        back = fe.c_of_mu(mu, 702.0)
        np.testing.assert_allclose(back, c, atol=1e-12)

    def test_minimum_at_c_min(self):
        fe = make_fe()
        t = 698.0
        c0 = fe.c_min(t)
        f0 = fe.free_energy(c0, t)
        rng = np.random.default_rng(1)
        for _ in range(20):
            c = c0 + rng.normal(scale=0.05, size=2)
            assert fe.free_energy(c, t) >= f0 - 1e-12

    def test_grand_potential_is_legendre_transform(self):
        fe = make_fe()
        t = 705.0
        mu = np.array([0.3, -0.2])
        c = fe.c_of_mu(mu, t)
        expected = fe.free_energy(c, t) - float(mu @ c)
        assert fe.grand_potential(mu, t) == pytest.approx(expected, rel=1e-12)

    def test_dpsi_dmu_is_minus_c(self):
        fe = make_fe()
        t = 700.0
        mu = np.array([0.1, 0.4])
        eps = 1e-6
        for i in range(2):
            dm = np.zeros(2)
            dm[i] = eps
            num = (fe.grand_potential(mu + dm, t) - fe.grand_potential(mu - dm, t)) / (
                2 * eps
            )
            assert num == pytest.approx(fe.dpsi_dmu(mu, t)[i], abs=1e-6)

    def test_offset_vanishes_at_eutectic(self):
        fe = make_fe()
        assert fe.offset(fe.t_eutectic) == 0.0

    def test_offset_sign_below_eutectic(self):
        fe = make_fe(latent=0.2)
        assert fe.offset(fe.t_eutectic - 5.0) < 0.0

    def test_c_min_follows_slope(self):
        fe = make_fe()
        dt = 4.0
        shift = fe.c_min(fe.t_eutectic + dt) - fe.c_min(fe.t_eutectic)
        np.testing.assert_allclose(shift, fe.c_slope * dt)


class TestBroadcasting:
    def test_field_shaped_temperature(self):
        fe = make_fe()
        temps = np.linspace(695, 705, 7)
        cmin = fe.c_min(temps)
        assert cmin.shape == (2, 7)
        for i, t in enumerate(temps):
            np.testing.assert_allclose(cmin[:, i], fe.c_min(t))

    def test_field_shaped_mu(self):
        fe = make_fe()
        mu = np.random.default_rng(0).normal(size=(2, 4, 5))
        psi = fe.grand_potential(mu, 700.0)
        assert psi.shape == (4, 5)
        one = fe.grand_potential(mu[:, 2, 3], 700.0)
        assert psi[2, 3] == pytest.approx(float(one))


@settings(max_examples=30, deadline=None)
@given(
    mu0=st.floats(-1, 1), mu1=st.floats(-1, 1),
    t=st.floats(650, 750),
)
def test_roundtrip_property(mu0, mu1, t):
    """c(mu) and mu(c) are inverse bijections for any state."""
    fe = make_fe()
    mu = np.array([mu0, mu1])
    c = fe.c_of_mu(mu, t)
    np.testing.assert_allclose(fe.mu_of_c(c, t), mu, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(mu0=st.floats(-1, 1), mu1=st.floats(-1, 1))
def test_grand_potential_concave_in_mu(mu0, mu1):
    """psi(mu) is concave (its Hessian is -A^{-1} < 0)."""
    fe = make_fe()
    t = 700.0
    a = np.array([mu0, mu1])
    b = np.array([0.5, -0.5])
    mid = 0.5 * (a + b)
    psi_mid = fe.grand_potential(mid, t)
    avg = 0.5 * (fe.grand_potential(a, t) + fe.grand_potential(b, t))
    assert psi_mid >= avg - 1e-9
