"""Unit tests of the phase/component bookkeeping."""

import pytest

from repro.thermo.phases import Component, Phase, PhaseSet


def make_set(**kwargs):
    defaults = dict(
        phases=(
            Phase("Al"), Phase("Ag2Al"), Phase("Al2Cu"),
            Phase("liquid", is_liquid=True),
        ),
        components=(
            Component("Ag"), Component("Cu"), Component("Al", solvent=True),
        ),
    )
    defaults.update(kwargs)
    return PhaseSet(**defaults)


class TestValidation:
    def test_requires_exactly_one_liquid(self):
        with pytest.raises(ValueError, match="liquid"):
            make_set(phases=(Phase("a"), Phase("b")))

    def test_rejects_two_liquids(self):
        with pytest.raises(ValueError, match="liquid"):
            make_set(phases=(Phase("a", is_liquid=True), Phase("b", is_liquid=True)))

    def test_requires_exactly_one_solvent(self):
        with pytest.raises(ValueError, match="solvent"):
            make_set(components=(Component("Ag"), Component("Cu")))

    def test_solvent_must_be_last(self):
        with pytest.raises(ValueError, match="last"):
            make_set(components=(
                Component("Al", solvent=True), Component("Ag"), Component("Cu"),
            ))

    def test_rejects_duplicate_phase_names(self):
        with pytest.raises(ValueError, match="unique"):
            make_set(phases=(
                Phase("x"), Phase("x"), Phase("liq", is_liquid=True),
            ))


class TestAccessors:
    def test_counts(self):
        ps = make_set()
        assert ps.n_phases == 4
        assert ps.n_components == 3
        assert ps.n_solutes == 2

    def test_liquid_index(self):
        assert make_set().liquid_index == 3

    def test_solid_indices(self):
        assert make_set().solid_indices == (0, 1, 2)

    def test_phase_index_lookup(self):
        ps = make_set()
        assert ps.phase_index("Al2Cu") == 2
        with pytest.raises(KeyError):
            ps.phase_index("bogus")

    def test_component_index_lookup(self):
        ps = make_set()
        assert ps.component_index("Cu") == 1
        with pytest.raises(KeyError):
            ps.component_index("Zn")
