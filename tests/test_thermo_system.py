"""Tests of the whole-system thermodynamics facade and the Ag-Al-Cu data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interpolation import moelans_h
from repro.thermo.calphad import T_EUTECTIC_AG_AL_CU, ag_al_cu_data
from repro.thermo.system import TernaryEutecticSystem, _solve_spd_field


@pytest.fixture(scope="module")
def system():
    return TernaryEutecticSystem()


class TestAgAlCuData:
    def test_eutectic_temperature(self, system):
        assert system.t_eutectic == pytest.approx(T_EUTECTIC_AG_AL_CU)

    def test_equal_grand_potentials_at_eutectic(self, system):
        """At (T_E, mu*=0) all four phases coexist."""
        psi = system.grand_potentials(np.zeros(2), system.t_eutectic)
        np.testing.assert_allclose(psi, psi[0], atol=1e-12)

    def test_solids_favoured_below_eutectic(self, system):
        psi = system.grand_potentials(np.zeros(2), system.t_eutectic - 2.0)
        ell = system.liquid_index
        for s in system.phase_set.solid_indices:
            assert psi[s] < psi[ell]

    def test_liquid_favoured_above_eutectic(self, system):
        psi = system.grand_potentials(np.zeros(2), system.t_eutectic + 2.0)
        ell = system.liquid_index
        for s in system.phase_set.solid_indices:
            assert psi[s] > psi[ell]

    def test_lever_rule_fractions_consistent(self, system):
        frac = system.lever_rule_fractions()
        assert frac[system.liquid_index] == 0.0
        assert frac.sum() == pytest.approx(1.0)
        # reconstruct the melt composition from the solid mixture
        te = system.t_eutectic
        recon = sum(
            frac[s] * system.free_energy(s).c_min(te)
            for s in system.phase_set.solid_indices
        )
        np.testing.assert_allclose(recon, system.data.liquid_c_eq, atol=1e-9)

    def test_similar_phase_fractions(self, system):
        """The paper stresses 'similar phase fractions' — none dominates."""
        frac = system.lever_rule_fractions()
        solids = [frac[s] for s in system.phase_set.solid_indices]
        assert min(solids) > 0.1
        assert max(solids) < 0.6

    def test_diffusivity_contrast(self, system):
        ell = system.liquid_index
        d = system.diffusivities
        for s in system.phase_set.solid_indices:
            assert d[s] < 1e-2 * d[ell]

    def test_latent_scale_knob(self):
        scaled = TernaryEutecticSystem(ag_al_cu_data(latent_scale=2.0))
        base = TernaryEutecticSystem()
        dt = -3.0
        psi_s = scaled.grand_potentials(np.zeros(2), scaled.t_eutectic + dt)
        psi_b = base.grand_potentials(np.zeros(2), base.t_eutectic + dt)
        s0 = scaled.phase_set.solid_indices[0]
        assert psi_s[s0] == pytest.approx(2.0 * psi_b[s0])


class TestMixtures:
    def test_susceptibility_spd(self, system):
        h = np.array([0.2, 0.3, 0.1, 0.4])
        chi = system.susceptibility(h)
        assert chi.shape == (2, 2)
        np.testing.assert_allclose(chi, chi.T)
        assert np.all(np.linalg.eigvalsh(chi) > 0)

    def test_solve_susceptibility_inverts(self, system):
        h = np.array([0.25, 0.25, 0.25, 0.25])
        rhs = np.array([0.3, -0.7])
        x = system.solve_susceptibility(h, rhs)
        chi = system.susceptibility(h)
        np.testing.assert_allclose(chi @ x, rhs, atol=1e-12)

    def test_mu_of_mixture_roundtrip(self, system):
        h = moelans_h(np.array([0.4, 0.1, 0.2, 0.3]))
        t = system.t_eutectic - 1.0
        mu = np.array([0.2, -0.1])
        c = system.concentration(h, mu, t)
        back = system.mu_of_mixture(h, c, t)
        np.testing.assert_allclose(back, mu, atol=1e-10)

    def test_pure_phase_concentration(self, system):
        """With weight on a single phase, c equals that phase's c(mu)."""
        t = system.t_eutectic
        mu = np.array([0.05, 0.02])
        for a in range(system.n_phases):
            h = np.zeros(system.n_phases)
            h[a] = 1.0
            c = system.concentration(h, mu, t)
            np.testing.assert_allclose(
                c, system.free_energy(a).c_of_mu(mu, t), atol=1e-12
            )

    def test_field_shapes(self, system):
        mu = np.zeros((2, 3, 4))
        t = np.full((3, 4), system.t_eutectic)
        psi = system.grand_potentials(mu, t)
        assert psi.shape == (4, 3, 4)
        c = system.phase_concentrations(mu, t)
        assert c.shape == (4, 2, 3, 4)

    def test_mobility_positive(self, system):
        w = np.array([0.1, 0.1, 0.1, 0.7])
        m = system.mobility(w)
        assert np.all(np.linalg.eigvalsh(m) > 0)

    def test_mobility_small_in_solid(self, system):
        solid = np.zeros(system.n_phases)
        solid[0] = 1.0
        liquid = np.zeros(system.n_phases)
        liquid[system.liquid_index] = 1.0
        ms = system.mobility(solid)
        ml = system.mobility(liquid)
        assert np.linalg.norm(ms) < 1e-2 * np.linalg.norm(ml)


class TestSolveSPDField:
    def test_2x2_matches_linalg(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(2, 2, 5))
        mat = np.einsum("ik...,jk...->ij...", a, a) + 0.5 * np.eye(2)[:, :, None]
        rhs = rng.normal(size=(2, 5))
        x = _solve_spd_field(mat, rhs)
        for c in range(5):
            np.testing.assert_allclose(
                mat[:, :, c] @ x[:, c], rhs[:, c], atol=1e-10
            )

    def test_1x1(self):
        mat = np.full((1, 1, 3), 4.0)
        rhs = np.full((1, 3), 8.0)
        np.testing.assert_allclose(_solve_spd_field(mat, rhs), 2.0)

    def test_3x3_fallback(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(3, 3))
        mat = (a @ a.T + np.eye(3))[..., None] * np.ones(4)
        rhs = rng.normal(size=(3, 4))
        x = _solve_spd_field(mat, rhs)
        np.testing.assert_allclose(mat[..., 0] @ x[:, 1], rhs[:, 1], atol=1e-10)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            _solve_spd_field(np.eye(2)[..., None], np.zeros((3, 1)))


@settings(max_examples=25, deadline=None)
@given(
    w=st.lists(st.floats(0.01, 1.0), min_size=4, max_size=4),
    mu0=st.floats(-0.5, 0.5), mu1=st.floats(-0.5, 0.5),
)
def test_mixture_inversion_property(w, mu0, mu1):
    """mu_of_mixture inverts concentration for any positive weights."""
    system = TernaryEutecticSystem()
    h = np.asarray(w)
    h = h / h.sum()
    mu = np.array([mu0, mu1])
    t = system.t_eutectic + 1.3
    c = system.concentration(h, mu, t)
    np.testing.assert_allclose(system.mu_of_mixture(h, c, t), mu, atol=1e-8)
