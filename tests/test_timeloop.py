"""Tests of the functor-based time loop."""

import pytest

from repro.grid.timeloop import Timeloop


class TestScheduling:
    def test_execution_order(self):
        log = []
        tl = Timeloop()
        tl.add("a", lambda: log.append("a"))
        tl.add("b", lambda: log.append("b"))
        tl.run(2)
        assert log == ["a", "b", "a", "b"]
        assert tl.steps == 2

    def test_duplicate_name_rejected(self):
        tl = Timeloop()
        tl.add("x", lambda: None)
        with pytest.raises(ValueError, match="already"):
            tl.add("x", lambda: None)

    def test_insert_before_builds_overlap_order(self):
        """Deriving the Algorithm 2 order from the plain schedule."""
        log = []
        tl = Timeloop()
        tl.add("phi-sweep", lambda: log.append("phi"))
        tl.add("mu-sweep", lambda: log.append("mu"))
        # hide the mu exchange behind the phi sweep: runs right after it
        tl.insert_before("mu-sweep", "mu-exchange",
                         lambda: log.append("xmu"), category="communication")
        assert tl.order == ["phi-sweep", "mu-exchange", "mu-sweep"]
        tl.run()
        assert log == ["phi", "xmu", "mu"]

    def test_insert_before_unknown_anchor(self):
        tl = Timeloop()
        with pytest.raises(KeyError):
            tl.insert_before("ghost", "x", lambda: None)

    def test_remove(self):
        tl = Timeloop()
        tl.add("a", lambda: None)
        tl.add("b", lambda: None)
        tl.remove("a")
        assert tl.order == ["b"]
        with pytest.raises(KeyError):
            tl.remove("a")

    def test_negative_steps(self):
        with pytest.raises(ValueError):
            Timeloop().run(-1)


class TestTiming:
    def test_per_functor_and_category_accounting(self):
        import time

        tl = Timeloop()
        tl.add("work", lambda: time.sleep(0.002), category="compute")
        tl.add("comm", lambda: time.sleep(0.001), category="communication")
        tl.run(3)
        rep = tl.timing_report()
        assert rep["functors"]["work"]["calls"] == 3
        assert rep["functors"]["comm"]["seconds"] > 0
        assert rep["categories"]["compute"] >= rep["categories"]["communication"]
        assert rep["steps"] == 3

    def test_reset(self):
        tl = Timeloop()
        tl.add("a", lambda: None)
        tl.run(5)
        tl.reset_timers()
        rep = tl.timing_report()
        assert rep["functors"]["a"]["calls"] == 0
        assert rep["steps"] == 0


class TestDrivesRealStep:
    def test_simulation_step_as_functors(self):
        """One Algorithm-1 step expressed through the Timeloop matches the
        built-in driver."""
        import numpy as np

        from repro.core.solver import Simulation
        from repro.grid.boundary import apply_boundaries
        from repro.thermo.system import TernaryEutecticSystem

        system = TernaryEutecticSystem()
        a = Simulation(shape=(5, 5, 8), system=system, kernel="buffered")
        b = Simulation(shape=(5, 5, 8), system=system, kernel="buffered",
                       params=a.params, temperature=a.temperature)
        a.initialize_voronoi(seed=1, n_seeds=3)
        b.initialize_voronoi(seed=1, n_seeds=3)

        tl = Timeloop()
        state = {}

        def phi_sweep():
            state["t_old"] = b._slice_temps(b.time)
            state["t_new"] = b._slice_temps(b.time + b.params.dt)
            b.phi.interior_dst[...] = b._phi_kernel(
                b.ctx, b.phi.src, b.mu.src, state["t_old"]
            )

        def phi_boundary():
            apply_boundaries(b.phi.dst, b.phi_bc)

        def mu_sweep():
            b.mu.interior_dst[...] = b._mu_kernel(
                b.ctx, b.mu.src, b.phi.src, b.phi.dst,
                state["t_old"], state["t_new"],
            )

        def mu_boundary():
            apply_boundaries(b.mu.dst, b.mu_bc)

        def swap():
            b.phi.swap()
            b.mu.swap()
            b.time += b.params.dt
            b.step_count += 1

        tl.add("phi-sweep", phi_sweep)
        tl.add("phi-boundary", phi_boundary, category="boundary")
        tl.add("mu-sweep", mu_sweep)
        tl.add("mu-boundary", mu_boundary, category="boundary")
        tl.add("swap", swap, category="bookkeeping")

        a.step(4)
        tl.run(4)
        np.testing.assert_array_equal(b.phi.interior_src, a.phi.interior_src)
        np.testing.assert_array_equal(b.mu.interior_src, a.mu.interior_src)


class TestFailureAnnotation:
    def test_functor_error_carries_name_and_step(self):
        from repro.grid.timeloop import FunctorError

        tl = Timeloop()
        tl.add("ok", lambda: None)
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] == 3:
                raise RuntimeError("kaboom")

        tl.add("flaky-sweep", flaky)
        tl.run(2)
        with pytest.raises(FunctorError, match="flaky-sweep.*step 2") as info:
            tl.run(5)
        assert info.value.functor == "flaky-sweep"
        assert info.value.step == 2
        assert isinstance(info.value.original, RuntimeError)

    def test_partial_steps_in_timing_report(self):
        tl = Timeloop()
        tl.add("a", lambda: None)

        def boom():
            raise ValueError("x")

        tl.add("b", boom)
        from repro.grid.timeloop import FunctorError

        with pytest.raises(FunctorError):
            tl.run(3)
        report = tl.timing_report()
        assert report["steps"] == 0
        assert report["partial_steps"] == 1
        # the failing invocation is timed AND counted, so the reported
        # average stays a true per-invocation average
        assert report["functors"]["b"]["calls"] == 1
        assert report["functors"]["b"]["seconds"] >= 0.0
        assert report["functors"]["b"]["avg"] == report["functors"]["b"]["total"]
        assert report["functors"]["a"]["calls"] == 1
        tl.reset_timers()
        assert tl.timing_report()["partial_steps"] == 0

    def test_failing_invocation_updates_stats_atomically(self):
        """Regression: calls/min/max must move together with seconds.

        The old code bumped ``seconds`` in ``finally`` but ``calls`` and
        the extrema only on success, so one failure inflated every later
        average (total included the failed run, the divisor did not).
        """
        from repro.grid.timeloop import Functor

        state = {"n": 0}

        def sometimes_boom():
            state["n"] += 1
            if state["n"] == 2:
                raise ValueError("injected")

        f = Functor(name="s", fn=sometimes_boom)
        f()
        with pytest.raises(ValueError):
            f()
        f()
        assert f.calls == 3
        assert f.min_seconds <= f.max_seconds
        assert f.seconds >= 3 * f.min_seconds - 1e-12
        # the average over *all* invocations is consistent with the total
        assert abs(f.seconds / f.calls - f.seconds / 3) < 1e-15
