"""Span tracing: recorder, Chrome export, derived analyses, solver wiring.

ISSUE 8 acceptance: with tracing on, a 2-rank distributed run on *both*
simmpi backends exports a valid Chrome trace-event JSON with per-rank
compute and exchange spans, and the RunReport gains a validated
``"tracing"`` section (overlap efficiency, per-rank imbalance, pipe
latency on the process backend).  With tracing off nothing is recorded,
written or reported.
"""

import json

import pytest

from repro.core.nucleation import smooth_phase_field, voronoi_initial_condition
from repro.distributed import DistributedSimulation
from repro.telemetry import RunTelemetry
from repro.telemetry.report import validate_run_report
from repro.telemetry.spans import (
    merge_intervals,
    overlap_efficiency,
    overlap_seconds,
    per_rank_imbalance,
    pipe_latency_histogram,
    tracing_section,
)
from repro.telemetry.timing import TimingTree
from repro.telemetry.tracing import (
    Span,
    SpanRecorder,
    load_chrome_trace,
    recorder_from_env,
    spans_to_chrome_trace,
    trace_enabled,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.thermo.system import TernaryEutecticSystem


def span(scope, t0, t1, rank=0, **args):
    return Span(scope, rank, 0, t0, t1, args or None)


class TestSpanRecorder:
    def test_records_spans_with_args(self):
        rec = SpanRecorder(rank=3)
        rec.record("comm/phi", 1.0, 2.0, bytes=512)
        (s,) = rec.spans()
        assert s.scope == "comm/phi"
        assert s.rank == 3
        assert (s.t_start, s.t_end) == (1.0, 2.0)
        assert s.args == {"bytes": 512}

    def test_ring_buffer_drops_oldest_and_counts(self):
        rec = SpanRecorder(buffer_size=4)
        for i in range(10):
            rec.record(f"s{i}", float(i), float(i) + 0.5)
        spans = rec.spans()
        assert [s.scope for s in spans] == ["s6", "s7", "s8", "s9"]
        stats = rec.stats()
        assert stats["offered"] == 10
        assert stats["recorded"] == 10
        assert stats["dropped"] == 6

    def test_sampling_keeps_one_of_n(self):
        rec = SpanRecorder(sample=3)
        for i in range(9):
            rec.record(f"s{i}", float(i), float(i) + 0.5)
        assert [s.scope for s in rec.spans()] == ["s0", "s3", "s6"]
        stats = rec.stats()
        assert stats["offered"] == 9
        assert stats["recorded"] == 3
        assert stats["dropped"] == 0

    def test_drain_clears_buffer_but_keeps_stats(self):
        rec = SpanRecorder()
        rec.record("a", 0.0, 1.0)
        assert len(rec.drain()) == 1
        assert rec.spans() == []
        stats = rec.stats()
        assert stats["recorded"] == 1
        assert stats["dropped"] == 0  # drained spans were not *lost*

    def test_record_duration_backdates_start(self):
        rec = SpanRecorder()
        rec.record_duration("compile", 0.25)
        (s,) = rec.spans()
        assert s.t_end - s.t_start == pytest.approx(0.25)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpanRecorder(buffer_size=0)
        with pytest.raises(ValueError):
            SpanRecorder(sample=0)


class TestEnvActivation:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not trace_enabled()
        assert recorder_from_env(0) is None

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace_enabled()
        assert isinstance(recorder_from_env(0), SpanRecorder)
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not trace_enabled()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert recorder_from_env(0, trace=False) is None
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert recorder_from_env(0, trace=True) is not None

    def test_knob_env_vars(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "4")
        monkeypatch.setenv("REPRO_TRACE_BUFFER", "128")
        rec = recorder_from_env(1)
        assert rec.sample == 4
        assert rec.buffer_size == 128
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "nope")
        with pytest.raises(ValueError):
            recorder_from_env(1)


class TestTimingTreeTracer:
    def test_scoped_measurement_becomes_span(self):
        rec = SpanRecorder()
        tree = TimingTree(tracer=rec)
        tree.start("comm")
        tree.start("phi")
        tree.stop()
        tree.stop()
        scopes = [s.scope for s in rec.spans()]
        assert scopes == ["comm/phi", "comm"]

    def test_record_path_becomes_span_with_args(self):
        rec = SpanRecorder()
        tree = TimingTree(tracer=rec)
        tree.record("comm/phi", 0.002, span_args={"bytes": 99})
        (s,) = rec.spans()
        assert s.scope == "comm/phi"
        assert s.args == {"bytes": 99}
        assert s.t_end - s.t_start == pytest.approx(0.002)

    def test_no_tracer_records_nothing(self):
        tree = TimingTree()
        tree.record("comm/phi", 0.002, span_args={"bytes": 99})
        assert tree.tracer is None  # and no AttributeError happened


class TestChromeExport:
    def test_round_trip(self, tmp_path):
        spans = [
            span("compute/phi", 1.0, 2.0, rank=0),
            span("comm/phi", 1.5, 2.5, rank=1, bytes=256),
        ]
        path = write_chrome_trace(tmp_path / "trace.json", spans)
        doc = load_chrome_trace(path)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in events} == {0, 1}
        named = {e["name"]: e for e in events}
        # timestamps are microseconds relative to the earliest span
        assert named["compute/phi"]["ts"] == pytest.approx(0.0)
        assert named["comm/phi"]["ts"] == pytest.approx(0.5e6)
        assert named["comm/phi"]["dur"] == pytest.approx(1.0e6)
        assert named["comm/phi"]["args"] == {"bytes": 256}
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"rank 0", "rank 1"}

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "a", "ph": "X", "pid": 0, "tid": 0,
                 "ts": -1.0, "dur": 0.0},
            ]})
        # valid minimal document passes
        validate_chrome_trace(
            spans_to_chrome_trace([span("a", 0.0, 1.0)])
        )


class TestSpanAnalyses:
    def test_merge_and_overlap_seconds(self):
        merged = merge_intervals([(0.0, 1.0), (0.5, 2.0), (3.0, 4.0),
                                  (5.0, 5.0)])
        assert merged == [(0.0, 2.0), (3.0, 4.0)]
        assert overlap_seconds(1.5, 3.5, merged) == pytest.approx(1.0)

    def test_overlap_efficiency_exact(self):
        # rank 1 computes over [0, 4]; rank 0's exchange [1, 3] is fully
        # hidden, rank 1's own exchange [5, 6] is not (no peer compute).
        spans = [
            span("compute/phi", 0.0, 4.0, rank=1),
            span("comm/phi", 1.0, 3.0, rank=0),
            span("comm/mu", 5.0, 6.0, rank=1),
        ]
        result = overlap_efficiency(spans)
        assert result["exchange_seconds"] == pytest.approx(3.0)
        assert result["hidden_seconds"] == pytest.approx(2.0)
        assert result["efficiency"] == pytest.approx(2.0 / 3.0)
        assert result["per_rank"]["0"]["efficiency"] == pytest.approx(1.0)
        assert result["per_rank"]["1"]["efficiency"] == pytest.approx(0.0)

    def test_own_rank_compute_does_not_hide(self):
        spans = [
            span("compute/phi", 0.0, 4.0, rank=0),
            span("comm/phi", 1.0, 3.0, rank=0),
        ]
        assert overlap_efficiency(spans)["efficiency"] == 0.0

    def test_per_rank_imbalance_exact(self):
        spans = [
            span("step", 0.0, 1.0, rank=0),
            span("step", 1.0, 2.0, rank=0),
            span("step", 0.0, 3.0, rank=1),
        ]
        result = per_rank_imbalance(spans)
        assert result["per_rank"]["0"] == {"seconds": 2.0, "spans": 2}
        assert result["per_rank"]["1"] == {"seconds": 3.0, "spans": 1}
        assert result["max"] == 3.0
        assert result["avg"] == pytest.approx(2.5)
        assert result["ratio"] == pytest.approx(1.2)
        assert result["stddev"] == pytest.approx(0.5)

    def test_pipe_histogram_buckets_and_none(self):
        assert pipe_latency_histogram([span("comm/phi", 0.0, 1.0)]) is None
        spans = [
            span("comm/pipe/send", 0.0, 3e-6),     # 3 us -> bin "< 5"
            span("comm/pipe/send", 0.0, 400e-6),   # 400 us -> bin "< 500"
            span("comm/pipe/recv", 0.0, 2.0),      # 2 s -> open top bin
        ]
        hist = pipe_latency_histogram(spans)
        assert hist["unit"] == "us"
        send = hist["counts"]["send"]
        assert send[hist["edges_us"].index(5.0)] == 1
        assert send[hist["edges_us"].index(500.0)] == 1
        assert hist["counts"]["recv"][-1] == 1
        assert hist["summary"]["send"]["calls"] == 2
        assert hist["summary"]["recv"]["max_us"] == pytest.approx(2e6)

    def test_tracing_section_shape(self):
        section = tracing_section(
            [span("step", 0.0, 1.0)],
            [{"dropped": 2, "sample": 4}, {"dropped": 1, "sample": 4}],
        )
        assert section["enabled"] is True
        assert section["spans"] == 1
        assert section["dropped"] == 3
        assert section["sample"] == 4
        assert section["pipe_latency"] is None


@pytest.fixture(scope="module")
def initial_state():
    system = TernaryEutecticSystem()
    phi0, mu0 = voronoi_initial_condition(
        system, (8, 8, 16), solid_height=5, n_seeds=4
    )
    return system, smooth_phase_field(phi0, 2), mu0


def _traced_run(initial_state, tmp_path, backend, **kwargs):
    system, phi0, mu0 = initial_state
    sim = DistributedSimulation(
        (8, 8, 16), (2, 1, 1), system=system, kernel="buffered",
        n_ranks=2, backend=backend, **kwargs,
    )
    telemetry = RunTelemetry(directory=tmp_path, run_id="traced",
                             trace=True)
    return sim.run(3, phi0, mu0, telemetry=telemetry), telemetry


class TestDistributedTracing:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_two_rank_traced_run(self, initial_state, tmp_path, backend):
        res, telemetry = _traced_run(initial_state, tmp_path, backend)
        validate_run_report(res.report)
        tracing = res.report["tracing"]
        assert tracing["enabled"] is True
        assert tracing["spans"] > 0
        assert 0.0 <= tracing["overlap"]["efficiency"] <= 1.0
        assert tracing["overlap"]["exchange_seconds"] > 0
        assert sorted(tracing["imbalance"]["per_rank"]) == ["0", "1"]
        assert tracing["imbalance"]["ratio"] >= 1.0
        # exported Chrome trace: valid, both ranks, compute AND exchange
        assert res.trace_path == telemetry.trace_path()
        doc = load_chrome_trace(res.trace_path)
        by_rank = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                by_rank.setdefault(ev["pid"], set()).add(
                    ev["name"].split("/")[0]
                )
        assert sorted(by_rank) == [0, 1]
        for rank, cats in by_rank.items():
            assert {"compute", "comm", "step"} <= cats, (rank, cats)

    def test_process_backend_records_pipe_spans(self, initial_state,
                                                tmp_path):
        res, _ = _traced_run(initial_state, tmp_path, "process")
        hist = res.report["tracing"]["pipe_latency"]
        assert hist is not None
        assert {"send", "recv"} <= set(hist["summary"])
        assert all(t["calls"] > 0 for t in hist["summary"].values())

    def test_overlap_schedule_traces(self, initial_state, tmp_path):
        res, _ = _traced_run(initial_state, tmp_path, "thread",
                             overlap=True)
        tracing = res.report["tracing"]
        assert 0.0 <= tracing["overlap"]["efficiency"] <= 1.0
        scopes = {s.scope for s in res.spans}
        assert "compute/mu_local" in scopes  # Algorithm 2 split ran

    def test_trace_off_by_default(self, initial_state, tmp_path,
                                  monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        system, phi0, mu0 = initial_state
        sim = DistributedSimulation((8, 8, 16), (2, 1, 1), system=system,
                                    kernel="buffered", n_ranks=2)
        telemetry = RunTelemetry(directory=tmp_path, run_id="plain")
        res = sim.run(2, phi0, mu0, telemetry=telemetry)
        assert "tracing" not in res.report
        assert res.spans is None
        assert res.trace_path is None
        assert not (tmp_path / "trace-plain.json").exists()

    def test_traced_run_fields_match_untraced(self, initial_state,
                                              tmp_path):
        import numpy as np

        system, phi0, mu0 = initial_state
        sim = DistributedSimulation((8, 8, 16), (2, 1, 1), system=system,
                                    kernel="buffered", n_ranks=2)
        plain = sim.run(3, phi0, mu0)
        traced, _ = _traced_run(initial_state, tmp_path, "thread")
        np.testing.assert_array_equal(plain.phi, traced.phi)
        np.testing.assert_array_equal(plain.mu, traced.mu)

    def test_sampled_trace_reports_sample(self, initial_state, tmp_path):
        system, phi0, mu0 = initial_state
        sim = DistributedSimulation((8, 8, 16), (2, 1, 1), system=system,
                                    kernel="buffered", n_ranks=2)
        telemetry = RunTelemetry(directory=tmp_path, run_id="sampled",
                                 trace=True, trace_sample=2)
        res = sim.run(3, phi0, mu0, telemetry=telemetry)
        tracing = res.report["tracing"]
        assert tracing["sample"] == 2
        doc = json.loads(res.trace_path.read_text())
        validate_chrome_trace(doc)
