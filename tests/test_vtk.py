"""Tests of the legacy-VTK field writer."""

import numpy as np
import pytest

from repro.io.vtk import write_vtk_fields


class TestWriter:
    def test_header_and_payload(self, tmp_path):
        path = tmp_path / "out.vtk"
        phi = np.arange(24, dtype=float).reshape(2, 3, 4)
        nbytes = write_vtk_fields(path, {"phi0": phi})
        text = path.read_text()
        assert nbytes == len(text)
        assert "DATASET STRUCTURED_POINTS" in text
        assert "DIMENSIONS 2 3 4" in text
        assert "POINT_DATA 24" in text
        assert "SCALARS phi0 double 1" in text

    def test_value_ordering_x_fastest(self, tmp_path):
        path = tmp_path / "o.vtk"
        arr = np.zeros((2, 2, 1))
        arr[1, 0, 0] = 7.0
        write_vtk_fields(path, {"f": arr})
        tail = path.read_text().splitlines()
        data_idx = tail.index("LOOKUP_TABLE default") + 1
        values = " ".join(tail[data_idx:]).split()
        # x fastest: (0,0,0), (1,0,0), (0,1,0), (1,1,0)
        assert [float(v) for v in values[:4]] == [0.0, 7.0, 0.0, 0.0]

    def test_2d_promoted(self, tmp_path):
        path = tmp_path / "o2.vtk"
        write_vtk_fields(path, {"f": np.ones((3, 5))})
        assert "DIMENSIONS 3 5 1" in path.read_text()

    def test_multiple_fields(self, tmp_path):
        path = tmp_path / "m.vtk"
        a = np.zeros((2, 2, 2))
        write_vtk_fields(path, {"a": a, "b": a + 1})
        text = path.read_text()
        assert text.count("SCALARS") == 2

    def test_shape_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="share"):
            write_vtk_fields(tmp_path / "x.vtk",
                             {"a": np.zeros((2, 2)), "b": np.zeros((3, 3))})

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            write_vtk_fields(tmp_path / "x.vtk", {})

    def test_bad_rank(self, tmp_path):
        with pytest.raises(ValueError, match="2-D or 3-D"):
            write_vtk_fields(tmp_path / "x.vtk", {"a": np.zeros(5)})

    def test_simulation_fields_roundtrip_size(self, tmp_path):
        from repro.core.solver import Simulation

        sim = Simulation(shape=(4, 4, 6))
        sim.initialize_voronoi(seed=0, n_seeds=3)
        fields = {
            f"phi_{p.name}": sim.phi.interior_src[i]
            for i, p in enumerate(sim.system.phase_set.phases)
        }
        n = write_vtk_fields(tmp_path / "sim.vtk", fields)
        assert n > 0
